open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let trace_of ?(seed = 7) ?(yields = Coop_trace.Loc.Set.empty) src =
  let prog = Compile.source src in
  let _, trace =
    Runner.record ~yields ~max_steps:500_000 ~sched:(Sched.random ~seed ()) prog
  in
  trace

let check_src ?seed ?yields src = Cooperability.check (trace_of ?seed ?yields src)

let test_single_transaction_clean () =
  let r = check_src (Micro.single_transaction ~threads:3) in
  Alcotest.(check bool) "cooperable" true (Cooperability.cooperable r);
  Alcotest.(check int) "no races" 0 (List.length r.Cooperability.races)

let test_locked_counter_needs_yield () =
  let r = check_src (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false) in
  Alcotest.(check bool) "violations found" true (r.Cooperability.violations <> []);
  Alcotest.(check int) "race-free" 0 (List.length r.Cooperability.races);
  (* All violations blame the same program location: the loop-head acquire. *)
  Alcotest.(check int) "one location" 1
    (Coop_trace.Loc.Set.cardinal
       (Cooperability.violation_locs r.Cooperability.violations))

let test_locked_counter_with_yield_clean () =
  let r = check_src (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:true) in
  Alcotest.(check bool) "cooperable with yields" true (Cooperability.cooperable r)

let test_check_then_act_flagged () =
  let r = check_src (Micro.check_then_act ~threads:2) in
  Alcotest.(check bool) "violations found" true (r.Cooperability.violations <> [])

let test_racy_counter_races () =
  let r = check_src (Micro.racy_counter ~threads:2 ~incs:3) in
  Alcotest.(check bool) "races reported" true (r.Cooperability.races <> []);
  Alcotest.(check int) "one racy var" 1
    (Coop_trace.Event.Var_set.cardinal r.Cooperability.racy)

let test_online_matches_offline () =
  let src = Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false in
  let prog = Compile.source src in
  let sink, finish = Cooperability.online () in
  let _ = Runner.run ~max_steps:500_000 ~sched:(Sched.random ~seed:7 ()) ~sink prog in
  let online = finish () in
  let offline = check_src ~seed:7 src in
  Alcotest.(check int) "same violation count"
    (List.length offline.Cooperability.violations)
    (List.length online.Cooperability.violations);
  Alcotest.(check int) "same race count"
    (List.length offline.Cooperability.races)
    (List.length online.Cooperability.races)

let test_injected_yields_silence_violations () =
  let src = Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false in
  let r0 = check_src ~seed:3 src in
  let yields = Cooperability.violation_locs r0.Cooperability.violations in
  let r1 = check_src ~seed:3 ~yields src in
  Alcotest.(check bool) "clean after injection" true (Cooperability.cooperable r1)

let test_sequential_always_cooperable_race_free () =
  (* A single-threaded program can never violate cooperability. *)
  let r = check_src "var x = 0; lock m; fn main() { sync (m) { x = 1; } sync (m) { x = 2; } print(x); }" in
  Alcotest.(check bool) "single thread cooperable" true (Cooperability.cooperable r)

let test_thread_local_locks_are_both_movers () =
  (* A lock only one thread ever touches imposes no transaction structure:
     repeated sync regions in a single thread are cooperable. *)
  let r =
    check_src
      "var x = 0; lock m; fn main() { sync (m) { x = 1; } sync (m) { x = 2; } print(x); }"
  in
  Alcotest.(check bool) "single-threaded locking cooperable" true
    (Cooperability.cooperable r)

let test_local_locks_predicate () =
  let trace =
    trace_of
      "var x = 0; lock a; lock b; fn w() { sync (b) { x = x + 1; } } fn main() { sync (a) { x = 1; } var t = spawn w(); sync (b) { x = x + 1; } join t; }"
  in
  let local = Cooperability.local_locks_of trace in
  Alcotest.(check bool) "a is local" true (local 0);
  Alcotest.(check bool) "b is shared" false (local 1);
  Alcotest.(check bool) "unknown lock is not local" false (local 99)

let test_empty_trace () =
  let r = Cooperability.check (Coop_trace.Trace.create ()) in
  Alcotest.(check bool) "empty trace cooperable" true (Cooperability.cooperable r);
  Alcotest.(check int) "no events" 0 r.Cooperability.events

let test_faulting_program_checked () =
  (* A worker that faults mid-transaction: the checker and inference must
     handle the truncated thread gracefully. *)
  let src =
    "var x = 0; lock m; fn bad() { sync (m) { x = 1; } assert(0); sync (m) { x = 2; } }\n\
     fn main() { var t1 = spawn bad(); var t2 = spawn bad(); join t1; join t2; print(x); }"
  in
  let r = check_src src in
  Alcotest.(check int) "race-free despite faults" 0 (List.length r.Cooperability.races);
  let inf = Coop_core.Infer.infer (Compile.source src) in
  Alcotest.(check int) "inference converges" 0 inf.Coop_core.Infer.final_check_violations

let test_violation_pp () =
  let r = check_src (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false) in
  match r.Cooperability.violations with
  | v :: _ ->
      let s = Format.asprintf "%a" Automaton.pp_violation v in
      Alcotest.(check bool) "mentions yield" true (String.length s > 20)
  | [] -> Alcotest.fail "expected a violation"

let suite =
  [
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "faulting programs" `Quick test_faulting_program_checked;
    Alcotest.test_case "violation rendering" `Quick test_violation_pp;
    Alcotest.test_case "thread-local locks are both-movers" `Quick
      test_thread_local_locks_are_both_movers;
    Alcotest.test_case "local-lock predicate" `Quick test_local_locks_predicate;
    Alcotest.test_case "single transaction clean" `Quick test_single_transaction_clean;
    Alcotest.test_case "locked counter needs yield" `Quick test_locked_counter_needs_yield;
    Alcotest.test_case "locked counter with yield clean" `Quick test_locked_counter_with_yield_clean;
    Alcotest.test_case "check-then-act flagged" `Quick test_check_then_act_flagged;
    Alcotest.test_case "racy counter races" `Quick test_racy_counter_races;
    Alcotest.test_case "online matches offline" `Quick test_online_matches_offline;
    Alcotest.test_case "injected yields silence violations" `Quick test_injected_yields_silence_violations;
    Alcotest.test_case "single thread cooperable" `Quick test_sequential_always_cooperable_race_free;
  ]
