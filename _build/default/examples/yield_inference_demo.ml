(* Yield inference across the whole benchmark suite:

     dune exec examples/yield_inference_demo.exe

   For each workload: how many yield annotations does cooperative reasoning
   actually require, and how much of the code stays yield-free? This is the
   paper's headline measurement, reproduced as a library walk-through. *)

open Coop_runtime
open Coop_core
open Coop_workloads

let () =
  Printf.printf "%-12s %8s %8s %8s %12s %12s\n" "workload" "viol." "yields"
    "rounds" "yield-free" "density/kev";
  List.iter
    (fun (e : Registry.entry) ->
      let prog = Registry.program_of e in
      let inf = Infer.infer prog in
      let _, trace =
        Runner.record ~yields:inf.Infer.yields
          ~sched:(Sched.random ~seed:5 ()) prog
      in
      let m = Metrics.compute prog ~inferred:inf.Infer.yields ~trace in
      Printf.printf "%-12s %8d %8d %8d %11.0f%% %12.2f\n" e.Registry.name
        inf.Infer.initial_violations
        m.Metrics.total_yields inf.Infer.rounds m.Metrics.pct_yield_free
        m.Metrics.yields_per_kevent)
    Registry.all;
  print_newline ();
  print_endline
    "Reading: thousands of raw violations collapse into a handful of yield";
  print_endline
    "annotations per program, and most functions need none at all -- the";
  print_endline "paper's central claim about the cost of cooperative reasoning."
