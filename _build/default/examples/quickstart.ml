(* Quickstart: compile a tiny concurrent program, execute it under an
   adversarial scheduler, and check the trace for cooperability.

     dune exec examples/quickstart.exe

   The program is the paper's motivating shape: a lock-protected counter
   bumped in a loop. It is race-free and correct, yet each loop iteration is
   its own transaction — so cooperative reasoning demands a yield at the
   loop head, and the checker tells us exactly that. *)

open Coop_lang
open Coop_runtime
open Coop_core

let source =
  {|
var counter = 0;
lock m;

fn worker(n) {
  var i = 0;
  while (i < n) {
    sync (m) {
      counter = counter + 1;
    }
    i = i + 1;
  }
}

fn main() {
  var t1 = spawn worker(5);
  var t2 = spawn worker(5);
  join t1;
  join t2;
  print(counter);
  assert(counter == 10);
}
|}

let () =
  (* 1. Compile: lexer -> parser -> resolver -> bytecode. *)
  let prog = Compile.source source in
  Printf.printf "compiled: %d bytecode instructions\n" (Bytecode.code_size prog);

  (* 2. Execute under a seeded random (preemptive) scheduler, recording the
        event trace. *)
  let outcome, trace = Runner.record ~sched:(Sched.random ~seed:42 ()) prog in
  Format.printf "run: %a, output = [%s]@." Runner.pp_termination
    outcome.Runner.termination
    (String.concat "; "
       (List.map string_of_int (Vm.output outcome.Runner.final)));

  (* 3. Check cooperability: FastTrack race pass + transaction automaton. *)
  let result = Cooperability.check trace in
  Format.printf "races: %d, cooperability violations: %d@."
    (List.length result.Cooperability.races)
    (List.length result.Cooperability.violations);

  (* 4. The violations name the yield the programmer must write. *)
  Coop_trace.Loc.Set.iter
    (fun loc -> Format.printf "  -> insert a yield at %a@." Coop_trace.Loc.pp loc)
    (Cooperability.violation_locs result.Cooperability.violations);

  (* 5. Inject the yields and re-check: the program is now cooperable. *)
  let yields = Cooperability.violation_locs result.Cooperability.violations in
  let _, trace' = Runner.record ~yields ~sched:(Sched.random ~seed:42 ()) prog in
  let result' = Cooperability.check trace' in
  Format.printf "after inserting %d yield(s): %d violations -> %s@."
    (Coop_trace.Loc.Set.cardinal yields)
    (List.length result'.Cooperability.violations)
    (if Cooperability.cooperable result' then "COOPERABLE" else "still broken")
