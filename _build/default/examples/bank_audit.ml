(* Auditing a banking workload with every analysis in the toolkit:

     dune exec examples/bank_audit.exe

   A correct lock-striped transfer service and a subtly broken variant (the
   balance check and the withdrawal live in different critical sections).
   The broken variant is race-free — a race detector alone says nothing —
   but both the cooperability checker and the atomicity baseline expose the
   check-then-act window, and exhaustive exploration shows the overdraft is
   reachable. *)

open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let broken_source =
  {|
var balance = 100;
var overdrafts = 0;
lock m;
array tids[2];

fn withdraw(amount) {
  var ok = 0;
  sync (m) {
    if (balance >= amount) {
      ok = 1;
    }
  }
  // The window: another teller can withdraw between check and debit.
  if (ok == 1) {
    sync (m) {
      balance = balance - amount;
      if (balance < 0) {
        overdrafts = overdrafts + 1;
      }
    }
  }
}

fn main() {
  tids[0] = spawn withdraw(80);
  tids[1] = spawn withdraw(80);
  join tids[0];
  join tids[1];
  print(balance);
  print(overdrafts);
}
|}

let audit name prog =
  Format.printf "@.=== %s ===@." name;
  let _, trace = Runner.record ~sched:(Sched.random ~seed:99 ()) prog in
  let coop = Cooperability.check trace in
  let atom = Coop_atomicity.Atomizer.check trace in
  Format.printf "races: %d | cooperability violations: %d | atomicity warnings: %d@."
    (List.length coop.Cooperability.races)
    (List.length coop.Cooperability.violations)
    (List.length atom.Coop_atomicity.Atomizer.warnings);
  List.iter
    (fun v -> Format.printf "  coop: %a@." Automaton.pp_violation v)
    coop.Cooperability.violations

let () =
  (* The correct workload from the registry: conserved total. *)
  let bank = Registry.program_of ~threads:3 ~size:10 (Option.get (Registry.find "bank")) in
  audit "lock-striped bank (correct)" bank;

  (* The broken check-then-act teller. *)
  let broken = Compile.source broken_source in
  audit "check-then-act teller (buggy)" broken;

  (* Exhaustive exploration shows the overdraft is a real behaviour. *)
  let r = Explore.run ~max_states:200_000 Explore.Preemptive broken in
  let overdraft_reachable =
    Behavior.Set.exists
      (fun b -> match b.Behavior.globals with _ :: o :: _ -> o > 0 | _ -> false)
      r.Explore.behaviors
  in
  Format.printf "@.exploration: %d behaviours, overdraft reachable: %b@."
    (Behavior.Set.cardinal r.Explore.behaviors)
    overdraft_reachable;
  assert overdraft_reachable;

  (* And with the inferred yields in place, cooperative exploration exhibits
     the same behaviours: the bug is now findable by sequential reasoning
     plus yields. *)
  let inf = Infer.infer broken in
  let v = Equivalence.compare ~yields:inf.Infer.yields broken in
  Format.printf "with %d inferred yield(s): preemptive == cooperative: %b@."
    (Coop_trace.Loc.Set.cardinal inf.Infer.yields)
    v.Equivalence.equal
