(* Model checking a racy program two ways, plus a look at the interleaving
   that exhibits the bug:

     dune exec examples/model_check.exe

   1. Enumerate all behaviours of a lost-update counter with the stateful
      visible-only DFS and with stateless sleep-set DPOR, and check they
      agree (they must: both are sound and complete for behaviour sets).
   2. Hunt for a schedule that actually loses an update, and render its
      trace as per-thread swim lanes — the picture the paper draws when it
      explains why preemptive reasoning is hard. *)

open Coop_lang
open Coop_runtime
open Coop_workloads

let () =
  let src = Micro.racy_counter ~threads:2 ~incs:2 in
  let prog = Compile.source src in

  (* Part 1: two independent model checkers, one answer. *)
  let dfs = Explore.run ~max_states:200_000 Explore.Preemptive prog in
  let dpor = Dpor.run ~max_executions:200_000 prog in
  Format.printf "DFS:  %d behaviours from %d states (complete=%b)@."
    (Behavior.Set.cardinal dfs.Explore.behaviors)
    dfs.Explore.states dfs.Explore.complete;
  Format.printf "DPOR: %d behaviours from %d executions (complete=%b)@."
    (Behavior.Set.cardinal dpor.Dpor.behaviors)
    dpor.Dpor.executions dpor.Dpor.complete;
  assert (Behavior.Set.equal dfs.Explore.behaviors dpor.Dpor.behaviors);
  Behavior.Set.iter
    (fun b -> Format.printf "  %a@." Behavior.pp b)
    dfs.Explore.behaviors;

  (* Part 2: find a schedule that loses updates and draw it. *)
  let rec hunt seed =
    if seed > 500 then None
    else begin
      let o, trace =
        Runner.record ~sched:(Sched.random ~seed ()) prog
      in
      match Vm.output o.Runner.final with
      | [ n ] when n < 4 -> Some (seed, n, trace)
      | _ -> hunt (seed + 1)
    end
  in
  match hunt 0 with
  | None -> print_endline "no lossy schedule found (unexpected)"
  | Some (seed, n, trace) ->
      Format.printf "@.seed %d loses updates (x = %d instead of 4):@.@." seed n;
      print_string
        (Coop_trace.Timeline.render_filtered ~max_events:40
           ~keep:(fun e ->
             match e.Coop_trace.Event.op with
             | Coop_trace.Event.Read _ | Coop_trace.Event.Write _
             | Coop_trace.Event.Fork _ | Coop_trace.Event.Join _
             | Coop_trace.Event.Out _ ->
                 true
             | _ -> false)
           trace);
      print_endline
        "\nThe interleaved rd/wr pairs above are exactly the lost updates -- \n\
         visible at a glance in the lanes."
