(* Dining philosophers, three ways:

     dune exec examples/dining_philosophers.exe

   1. Run the classic ordered-forks solution and watch it work.
   2. Let the checker infer where yields belong.
   3. Flip to the naive (unordered) fork acquisition and use the schedule
      explorer to prove it can deadlock — while the ordered version cannot,
      over the full schedule space. *)

open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let naive_source =
  (* Textbook-broken: everyone grabs the left fork first. *)
  {|
var meals = 0;
lock forks[3];
lock meals_lock;
array tids[3];

fn philosopher(id, rounds) {
  var r = 0;
  while (r < rounds) {
    acquire(forks[id]);
    acquire(forks[(id + 1) % 3]);
    sync (meals_lock) {
      meals = meals + 1;
    }
    release(forks[(id + 1) % 3]);
    release(forks[id]);
    r = r + 1;
  }
}

fn main() {
  var i = 0;
  while (i < 3) {
    tids[i] = spawn philosopher(i, 1);
    i = i + 1;
  }
  i = 0;
  while (i < 3) {
    join tids[i];
    i = i + 1;
  }
  print(meals);
}
|}

let () =
  (* Part 1: the ordered version from the benchmark registry. *)
  let entry = Option.get (Registry.find "philo") in
  let prog = Registry.program_of ~threads:4 ~size:8 entry in
  let outcome, _ = Runner.record ~sched:(Sched.random ~seed:7 ()) prog in
  Format.printf "ordered forks: %a, meals = %s@." Runner.pp_termination
    outcome.Runner.termination
    (String.concat ";" (List.map string_of_int (Vm.output outcome.Runner.final)));

  (* Part 2: infer the yield annotations. *)
  let inf = Infer.infer prog in
  Format.printf "inferred %d yield(s) in %d round(s):@."
    (Coop_trace.Loc.Set.cardinal inf.Infer.yields)
    inf.Infer.rounds;
  Coop_trace.Loc.Set.iter
    (fun l ->
      Format.printf "  %s, line %d@."
        prog.Bytecode.funcs.(l.Coop_trace.Loc.func).Bytecode.name
        l.Coop_trace.Loc.line)
    inf.Infer.yields;

  (* Part 3: exhaustively explore schedules of the 3-philosopher naive and
     ordered variants (1 round each so the space stays small). *)
  let naive = Compile.source naive_source in
  let ordered = Registry.program_of ~threads:3 ~size:1 entry in
  let explore p = Explore.run ~max_states:500_000 Explore.Preemptive p in
  let rn = explore naive and ro = explore ordered in
  Format.printf "naive:   %d states, deadlocks reachable: %b@." rn.Explore.states
    (rn.Explore.deadlocks > 0);
  Format.printf "ordered: %d states, deadlocks reachable: %b@." ro.Explore.states
    (ro.Explore.deadlocks > 0);
  assert (rn.Explore.deadlocks > 0);
  assert (ro.Explore.deadlocks = 0);
  print_endline "lock ordering eliminates the deadlock, as advertised"
