(* The reduction theorem, live:

     dune exec examples/replay_reduction.exe

   For a set of small canonical programs we enumerate EVERY preemptive
   schedule and EVERY cooperative schedule (with inferred yields injected)
   and compare the observable behaviour sets. Cooperability promises they
   coincide; this harness checks the promise program by program, and also
   shows how much cheaper the cooperative state space is — the practical
   payoff of reasoning at yield granularity. *)

open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let programs =
  [
    ("racy_counter 2x2", Micro.racy_counter ~threads:2 ~incs:2);
    ("locked_counter 2x2", Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false);
    ("check_then_act 2", Micro.check_then_act ~threads:2);
    ("single_transaction 3", Micro.single_transaction ~threads:3);
    ("producer_consumer 2", Micro.producer_consumer ~items:2);
  ]

let () =
  Printf.printf "%-22s %6s %10s %10s %8s %8s %6s\n" "program" "yields"
    "pre-behav" "coop-behav" "pre-st" "coop-st" "equal";
  List.iter
    (fun (name, src) ->
      let prog = Compile.source src in
      let inf = Infer.infer prog in
      let v = Equivalence.compare ~yields:inf.Infer.yields ~max_states:300_000 prog in
      Printf.printf "%-22s %6d %10d %10d %8d %8d %6b\n" name
        (Coop_trace.Loc.Set.cardinal inf.Infer.yields)
        (Behavior.Set.cardinal v.Equivalence.preemptive.Explore.behaviors)
        (Behavior.Set.cardinal v.Equivalence.cooperative.Explore.behaviors)
        v.Equivalence.preemptive.Explore.states
        v.Equivalence.cooperative.Explore.states v.Equivalence.equal;
      assert v.Equivalence.equal)
    programs;
  print_newline ();
  print_endline
    "Every preemptive behaviour is reproduced by some cooperative schedule,";
  print_endline
    "at a fraction of the states -- the empirical face of the reduction theorem."
