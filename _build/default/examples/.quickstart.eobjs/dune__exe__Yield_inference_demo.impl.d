examples/yield_inference_demo.ml: Coop_core Coop_runtime Coop_workloads Infer List Metrics Printf Registry Runner Sched
