examples/quickstart.ml: Bytecode Compile Coop_core Coop_lang Coop_runtime Coop_trace Cooperability Format List Printf Runner Sched String Vm
