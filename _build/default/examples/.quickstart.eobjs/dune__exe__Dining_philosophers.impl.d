examples/dining_philosophers.ml: Array Bytecode Compile Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Explore Format Infer List Option Registry Runner Sched String Vm
