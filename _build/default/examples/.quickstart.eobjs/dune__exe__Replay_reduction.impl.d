examples/replay_reduction.ml: Behavior Compile Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Equivalence Explore Infer List Micro Printf
