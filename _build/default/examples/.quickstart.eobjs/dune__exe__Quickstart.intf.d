examples/quickstart.mli:
