examples/model_check.ml: Behavior Compile Coop_lang Coop_runtime Coop_trace Coop_workloads Dpor Explore Format Micro Runner Sched Vm
