examples/yield_inference_demo.mli:
