examples/replay_reduction.mli:
