(* coopcheck: command-line front end for the cooperability toolkit.

   Subcommands:
     run      - execute a program under a scheduler and print its output
     trace    - execute and dump the event trace
     check    - run the cooperability checker (races + violations)
     explain  - check and print the causal evidence behind every verdict
     infer    - infer the yield set and report annotation metrics
     atomize  - run the Atomizer-style atomicity baseline
     explore  - enumerate behaviours preemptively vs cooperatively
     list     - list built-in workloads
     dump     - disassemble the compiled bytecode *)

open Cmdliner
open Coop_runtime

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A program argument is either a path to a .coop file or the name of a
   built-in workload (optionally at non-default parameters). *)
let load ~threads ~size spec =
  if Sys.file_exists spec then Coop_lang.Compile.source (read_file spec)
  else begin
    match Coop_workloads.Registry.find spec with
    | Some e -> Coop_workloads.Registry.program_of ?threads ?size e
    | None ->
        Printf.eprintf
          "coopcheck: %s is neither a file nor a built-in workload\n\
           (built-ins: %s)\n"
          spec
          (String.concat ", " Coop_workloads.Registry.names);
        exit 2
  end

(* Every malformed numeric argument — non-numeric, out of range — gets the
   same error shape naming the scheduler and what it wants; a quantum below
   1 would make round-robin spin forever and is rejected explicitly. *)
let scheduler_of = function
  | "cooperative" -> Sched.cooperative ()
  | "sequential" -> Sched.sequential
  | "random" -> Sched.random ~seed:42 ()
  | "rr" -> Sched.round_robin ~quantum:5 ()
  | s -> (
      let bad_arg kind wants arg =
        Printf.eprintf
          "coopcheck: invalid scheduler argument %S: %s wants %s\n" arg kind
          wants;
        exit 2
      in
      let unknown () =
        Printf.eprintf
          "coopcheck: unknown scheduler %s (have: random[:seed], \
           rr[:quantum], cooperative, sequential)\n"
          s;
        exit 2
      in
      match String.index_opt s ':' with
      | Some i -> (
          let kind = String.sub s 0 i in
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match kind with
          | "random" -> (
              match int_of_string_opt arg with
              | Some seed when seed >= 0 -> Sched.random ~seed ()
              | _ -> bad_arg "random" "a seed >= 0" arg)
          | "rr" -> (
              match int_of_string_opt arg with
              | Some quantum when quantum >= 1 ->
                  Sched.round_robin ~quantum ()
              | _ -> bad_arg "rr" "a quantum >= 1" arg)
          | _ -> unknown ())
      | None -> unknown ())

(* Common arguments *)

let prog_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM" ~doc:"A .coop file or a built-in workload name.")

let threads_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker threads (built-ins only).")

let size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s"; "size" ] ~docv:"N" ~doc:"Problem size (built-ins only).")

let sched_arg =
  Arg.(
    value & opt string "random:42"
    & info [ "sched" ] ~docv:"SCHED"
        ~doc:
          "Scheduler: random[:seed], rr[:quantum], cooperative, sequential.")

(* Exploration budgets (--max-steps, --max-states, --max-executions,
   --max-depth, --max-segment) share the --jobs/--shards raw-string
   funnel: 0, negatives and garbage all exit 2 with the same error shape
   instead of cmdliner's own exit 124. *)
let bad_budget_arg flag arg =
  Printf.eprintf
    "coopcheck: invalid %s argument %S: --%s wants a positive integer\n" flag
    arg flag;
  exit 2

let parse_budget ~flag = function
  | None -> None
  | Some s -> (
      match Coop_util.Pool.parse_jobs s with
      | Some n -> Some n
      | None -> bad_budget_arg flag s)

(* A validated budget option as an [int Term.t] (or [int option Term.t]
   without a default), so call sites stay oblivious to the raw-string
   plumbing. *)
let budget_opt_term ~flag ~doc =
  let name = flag in
  let arg =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"N" ~doc)
  in
  Term.(const (fun s -> parse_budget ~flag s) $ arg)

let budget_term ~flag ~default ~doc =
  Term.(
    const (fun s -> Option.value s ~default) $ budget_opt_term ~flag ~doc)

let max_steps_arg =
  budget_term ~flag:"max-steps" ~default:10_000_000
    ~doc:"Step budget before giving up."

let two_pass_arg =
  Arg.(
    value & flag
    & info [ "two-pass" ]
        ~doc:
          "Use the historical two-pass checker (race pass first, mover \
           pass over a second replay) instead of the single-pass engine. \
           Same results, twice the streaming; kept as the reference \
           oracle. Requires a replayable input.")

(* --jobs is taken as a raw string so every malformed spelling (0, -3,
   "abc") funnels through the same Pool.parse_jobs validation and exits 2
   in the scheduler-argument error style — cmdliner's own int conversion
   would exit 124 instead. *)
let jobs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel analyses (yield inference runs \
           its schedule portfolio concurrently; explore shards the branch \
           frontier). Defaults to \\$(b,COOP_JOBS), then the machine's \
           domain count. 1 forces the sequential path; results are \
           identical either way.")

let bad_jobs_arg source arg =
  Printf.eprintf
    "coopcheck: invalid jobs argument %S: %s wants a positive integer\n" arg
    source;
  exit 2

(* Resolve --jobs (> COOP_JOBS > recommended_domain_count) into the shared
   pool every parallel backend draws from. *)
let pool_of_jobs = function
  | None -> Coop_util.Pool.shared ()
  | Some s -> (
      match Coop_util.Pool.parse_jobs s with
      | Some n ->
          Coop_util.Pool.set_default_jobs n;
          Coop_util.Pool.shared ()
      | None -> bad_jobs_arg "--jobs" s)

(* A malformed COOP_JOBS is rejected up front rather than silently falling
   back to the machine's domain count. *)
let validate_env_jobs () =
  match Sys.getenv_opt "COOP_JOBS" with
  | Some s when Coop_util.Pool.parse_jobs s = None ->
      bad_jobs_arg "COOP_JOBS" s
  | _ -> ()

(* --shards shares --jobs' raw-string funnel: 0, negatives and garbage all
   exit 2 through the same validation, for the flag and the COOP_SHARDS
   override alike. *)
let shards_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Shard the single-pass analysis across K ownership sub-engines \
           scheduled on the shared pool: variables, locks and threads \
           route to shard id-mod-K, synchronization events broadcast as \
           clock-sync messages, and racy/shared facts gossip across \
           shards. Defaults to \\$(b,COOP_SHARDS), then 1 — the \
           sequential engine, which stays the differential oracle. \
           Results are identical at every K. Ignored with --two-pass.")

let bad_shards_arg source arg =
  Printf.eprintf
    "coopcheck: invalid shards argument %S: %s wants a positive integer\n" arg
    source;
  exit 2

let shards_of = function
  | None -> Coop_core.Sharded.default_shards ()
  | Some s -> (
      match Coop_util.Pool.parse_jobs s with
      | Some n -> n
      | None -> bad_shards_arg "--shards" s)

let validate_env_shards () =
  match Sys.getenv_opt "COOP_SHARDS" with
  | Some s when Coop_util.Pool.parse_jobs s = None ->
      bad_shards_arg "COOP_SHARDS" s
  | _ -> ()

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* --- trace files: formats, symbols, shared --trace plumbing ------------- *)

module Symtab = Coop_trace.Symtab
module Serialize = Coop_trace.Serialize
module Source = Coop_trace.Source

(* --format / --to share the --jobs raw-string funnel: any spelling
   format_of_string rejects exits 2 with the same error shape. *)
let bad_format_arg flag arg =
  Printf.eprintf
    "coopcheck: invalid format argument %S: %s wants text or binary\n" arg
    flag;
  exit 2

let format_of flag = function
  | None -> None
  | Some s -> (
      match Serialize.format_of_string s with
      | Some f -> Some f
      | None -> bad_format_arg flag s)

let format_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Wire format for --save: $(b,text) (one event per line, \
           greppable) or $(b,binary) (coop-trace/v1: length-prefixed \
           chunks over interned ids — decodes several times faster in \
           less than half the bytes). Every reader auto-detects, so the \
           choice only matters when writing. Default text.")

(* Saved traces carry the program's display names, so reports off a
   trace file can name functions and locks like reports off a live
   run. *)
let symtab_of_program (prog : Coop_lang.Bytecode.program) =
  let t = Symtab.create () in
  Array.iteri
    (fun i (f : Coop_lang.Bytecode.func) ->
      Symtab.set t Symtab.Func i f.Coop_lang.Bytecode.name)
    prog.Coop_lang.Bytecode.funcs;
  Array.iteri
    (fun i n -> Symtab.set t Symtab.Lock i n)
    prog.Coop_lang.Bytecode.lock_names;
  Array.iteri
    (fun i n -> Symtab.set t Symtab.Global i n)
    prog.Coop_lang.Bytecode.global_names;
  Array.iteri
    (fun i n -> Symtab.set t Symtab.Array i n)
    prog.Coop_lang.Bytecode.array_names;
  t

let from_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Analyze a trace saved with `trace --save` — either format, \
           auto-detected — instead of running the program (which is then \
           ignored). The file is streamed incrementally, never loaded \
           whole. Use `-` to read a trace from standard input \
           (single-pass only).")

let opt_prog_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM"
        ~doc:
          "A .coop file or a built-in workload name (optional when \
           --trace is given).")

let stdin_source ?syms () =
  set_binary_mode_in stdin true;
  Source.of_channel ?syms stdin

(* The shared --trace resolution: a saved file (re-streamable, either
   format), stdin (single-pass only — a pipe cannot be replayed), or a
   re-execution of the program under a fresh identically seeded
   scheduler. *)
let source_of ?syms ~command ~two_pass ~threads ~size ~sched ~max_steps
    ~from_trace spec =
  match from_trace with
  | Some "-" ->
      if two_pass then begin
        Printf.eprintf
          "coopcheck: --two-pass needs a replayable input; a piped trace \
           (--trace -) can only be read once\n";
        exit 2
      end;
      stdin_source ?syms ()
  | Some path -> Source.of_file ?syms path
  | None -> (
      match spec with
      | Some spec ->
          let prog = load ~threads ~size spec in
          Runner.source ~max_steps
            ~sched:(fun () -> scheduler_of sched)
            prog
      | None ->
          Printf.eprintf "coopcheck: %s wants a PROGRAM or --trace FILE\n"
            command;
          exit 2)

(* --- witnesses (the Coop_provenance surface) ---------------------------- *)

module Witness = Coop_provenance.Witness
module Json = Coop_util.Json

(* --witness shares the --jobs/--shards raw-string funnel: any spelling
   parse_mode rejects exits 2 with the same error shape. *)
let witness_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "witness" ] ~docv:"MODE"
        ~doc:
          "Attach causal evidence to every verdict: the unordered access \
           pair and clock comparison behind each race, the commit point \
           behind each violation or atomicity warning, the forcing \
           violation behind each inferred yield. MODE is $(b,text) \
           (append the evidence to the report), $(b,json) (emit a \
           coop-witness/v1 document on stdout) or $(b,json:FILE) (write \
           the document to FILE; validate with `bench/main.exe \
           json-verify FILE`).")

let bad_witness_arg source arg =
  Printf.eprintf
    "coopcheck: invalid witness argument %S: %s wants text, json or \
     json:FILE\n"
    arg source;
  exit 2

let witness_mode_of = function
  | None -> None
  | Some s -> (
      match Witness.parse_mode s with
      | Some m -> Some m
      | None -> bad_witness_arg "--witness" s)

(* Every coop-witness/v1 document leads with its schema and the
   subcommand that produced it, mirroring coop-obs/v1. *)
let witness_doc ~command fields =
  Json.Obj
    (("schema", Json.String Witness.schema)
    :: ("command", Json.String command)
    :: fields)

let emit_witness_doc dest doc =
  let s = Json.to_string doc in
  match dest with
  | None ->
      print_string s;
      print_newline ()
  | Some path -> write_file path s

let loc_string = Coop_trace.Loc.to_string

let cause_json (c : Coop_core.Online.cause) =
  Json.Obj
    [ ("seq", Json.Int c.Coop_core.Online.cseq);
      ("loc", Json.String (loc_string c.Coop_core.Online.cloc));
      ("op",
       Json.String
         (Format.asprintf "%a" Coop_trace.Event.pp_op c.Coop_core.Online.cop));
      ("mover", Json.String (Coop_core.Mover.to_string c.Coop_core.Online.cmover))
    ]

let opt_cause_json = function None -> Json.Null | Some c -> cause_json c

let pp_cause ppf (c : Coop_core.Online.cause) =
  Format.fprintf ppf "commit at %a (%s %a, event #%d)" Coop_trace.Loc.pp
    c.Coop_core.Online.cloc
    (Coop_core.Mover.to_string c.Coop_core.Online.cmover)
    Coop_trace.Event.pp_op c.Coop_core.Online.cop c.Coop_core.Online.cseq

let kind_string = function
  | Coop_race.Report.Write_write -> "write-write"
  | Coop_race.Report.Read_write -> "read-write"
  | Coop_race.Report.Write_read -> "write-read"

let race_json (r : Coop_race.Report.t) =
  Json.Obj
    [ ("var",
       Json.String
         (Format.asprintf "%a" Coop_trace.Event.pp_var r.Coop_race.Report.var));
      ("kind", Json.String (kind_string r.Coop_race.Report.kind));
      ("first_tid", Json.Int r.Coop_race.Report.first_tid);
      ("second_tid", Json.Int r.Coop_race.Report.second_tid);
      ("second_loc", Json.String (loc_string r.Coop_race.Report.second_loc));
      ("witness",
       match r.Coop_race.Report.witness with
       | Some w -> Witness.to_json w
       | None -> Json.Null) ]

let violation_json (v : Coop_core.Automaton.violation) =
  Json.Obj
    [ ("tid", Json.Int v.Coop_core.Automaton.tid);
      ("loc", Json.String (loc_string v.Coop_core.Automaton.loc));
      ("op",
       Json.String
         (Format.asprintf "%a" Coop_trace.Event.pp_op v.Coop_core.Automaton.op));
      ("mover",
       Json.String (Coop_core.Mover.to_string v.Coop_core.Automaton.mover));
      ("cause", opt_cause_json v.Coop_core.Automaton.cause) ]

(* Text-mode rendering: the evidence rides under its verdict, indented,
   so the default report shape is unchanged when --witness is off. *)
let print_race_witness wmode (race : Coop_race.Report.t) =
  match (wmode, race.Coop_race.Report.witness) with
  | Some Witness.Text, Some w -> Format.printf "    witness: %a@." Witness.pp w
  | _ -> ()

let print_cause wmode = function
  | Some c when wmode = Some Witness.Text ->
      Format.printf "    cause: %a@." pp_cause c
  | _ -> ()

(* --- profiling (the Coop_obs surface) ----------------------------------- *)

type profile_opts = {
  p_table : bool;
  p_json : string option;
  p_chrome : string option;
}

let profile_term =
  let table_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Record in-process telemetry and print the per-checker \
             attribution table (time per checker, share of the analysis \
             sink time, events, ns/event) plus counters, timers and \
             histogram digests.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-json" ] ~docv:"FILE"
          ~doc:
            "Write the full telemetry snapshot (schema coop-obs/v1) to \
             FILE; validate with `bench/main.exe json-verify FILE`.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Write the recorded spans as Chrome trace_event JSON to FILE \
             (load in chrome://tracing or Perfetto; one thread per \
             domain).")
  in
  Term.(
    const (fun p_table p_json p_chrome -> { p_table; p_json; p_chrome })
    $ table_arg $ json_arg $ chrome_arg)

let profile_wanted p = p.p_table || p.p_json <> None || p.p_chrome <> None

let profile_setup p = if profile_wanted p then Coop_obs.enable ()

(* Emit the requested telemetry views. Called before any non-zero exit so
   a violating run still produces its profile. *)
let profile_emit p =
  if profile_wanted p then begin
    let snap = Coop_obs.snapshot () in
    if p.p_table then print_string (Coop_obs.render_summary snap);
    Option.iter
      (fun path ->
        write_file path (Coop_util.Json.to_string (Coop_obs.to_json snap)))
      p.p_json;
    Option.iter
      (fun path ->
        write_file path
          (Coop_util.Json.to_string (Coop_obs.chrome_trace snap)))
      p.p_chrome;
    Coop_obs.disable ()
  end

let run_outcome ~sched ~max_steps ?(yields = Coop_trace.Loc.Set.empty) prog =
  Runner.run ~yields ~max_steps ~sched:(scheduler_of sched)
    ~sink:Coop_trace.Trace.Sink.ignore prog

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let action spec threads size sched max_steps =
    let prog = load ~threads ~size spec in
    let o = run_outcome ~sched ~max_steps prog in
    List.iter (fun v -> Printf.printf "%d\n" v) (Vm.output o.Runner.final);
    List.iter
      (fun (tid, msg) -> Printf.printf "thread %d faulted: %s\n" tid msg)
      (Vm.failures o.Runner.final);
    Format.printf "[%a in %d steps]@." Runner.pp_termination
      o.Runner.termination o.Runner.steps
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a program and print its output.")
    Term.(const action $ prog_arg $ threads_arg $ size_arg $ sched_arg
          $ max_steps_arg)

(* --- trace ------------------------------------------------------------- *)

let trace_cmd =
  let dump ~limit ~timeline trace =
    if timeline then
      print_string
        (Coop_trace.Timeline.render_filtered ?max_events:limit
           ~keep:(fun e ->
             match e.Coop_trace.Event.op with
             | Coop_trace.Event.Enter _ | Coop_trace.Event.Exit _ -> false
             | _ -> true)
           trace)
    else begin
      let n = Coop_trace.Trace.length trace in
      let shown = match limit with Some l -> min l n | None -> n in
      for i = 0 to shown - 1 do
        Format.printf "%6d %a@." i Coop_trace.Event.pp
          (Coop_trace.Trace.get trace i)
      done;
      if shown < n then Format.printf "... (%d more events)@." (n - shown)
    end
  in
  let action spec threads size sched max_steps limit save timeline from_trace
      format =
    let format =
      Option.value (format_of "--format" format) ~default:Serialize.Text
    in
    match from_trace with
    | Some file ->
        (* Offline mode: dump (or re-encode) a saved trace instead of
           executing. *)
        let syms = Symtab.create () in
        let source =
          if file = "-" then stdin_source ~syms ()
          else Source.of_file ~syms file
        in
        let trace = Source.record source in
        (match save with
        | Some path ->
            Serialize.save ~format ~syms path trace;
            Format.printf "saved %d events to %s@."
              (Coop_trace.Trace.length trace)
              path
        | None -> dump ~limit ~timeline trace)
    | None -> (
        let prog =
          match spec with
          | Some spec -> load ~threads ~size spec
          | None ->
              Printf.eprintf "coopcheck: trace wants a PROGRAM or --trace FILE\n";
              exit 2
        in
        match save with
        | Some path ->
            (* Stream events straight to disk; the trace is never held in
               memory. *)
            let saved =
              Serialize.with_file_sink ~format ~syms:(symtab_of_program prog)
                path (fun sink ->
                  let n = ref 0 in
                  let counting e = incr n; sink e in
                  ignore
                    (Runner.run ~max_steps ~sched:(scheduler_of sched)
                       ~sink:counting prog);
                  !n)
            in
            Format.printf "saved %d events to %s@." saved path
        | None ->
            let _, trace =
              Runner.record ~max_steps ~sched:(scheduler_of sched) prog
            in
            dump ~limit ~timeline trace)
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Print only the first N events.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Write the trace to FILE (reload with check --trace).")
  in
  let timeline_arg =
    Arg.(
      value & flag
      & info [ "timeline" ] ~doc:"Render per-thread swim lanes instead of a flat list.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Execute and dump the event trace.")
    Term.(const action $ opt_prog_arg $ threads_arg $ size_arg $ sched_arg
          $ max_steps_arg $ limit_arg $ save_arg $ timeline_arg
          $ from_trace_arg $ format_arg)

(* --- convert ------------------------------------------------------------ *)

let convert_cmd =
  let action src dst to_fmt =
    let to_fmt = format_of "--to" to_fmt in
    let syms = Symtab.create () in
    (* Materialize: conversion needs the symbol table before the first
       output byte (pragmas and name records lead), and src may be a
       pipe readable only once. *)
    let src_format, trace =
      if src = "-" then begin
        set_binary_mode_in stdin true;
        Serialize.of_string_any ~syms (In_channel.input_all stdin)
      end
      else
        let fmt = Source.format_of_file src in
        (fmt, Source.record (Source.of_file ~syms src))
    in
    let dst_format =
      match to_fmt with
      | Some f -> f
      | None -> (
          (* Round-trip by default: convert twice and you are back. *)
          match src_format with
          | Serialize.Text -> Serialize.Binary
          | Serialize.Binary -> Serialize.Text)
    in
    let summary oc =
      Printf.fprintf oc "converted %d events (%s -> %s)\n"
        (Coop_trace.Trace.length trace)
        (Serialize.format_to_string src_format)
        (Serialize.format_to_string dst_format)
    in
    if dst = "-" then begin
      set_binary_mode_out stdout true;
      print_string
        (match dst_format with
        | Serialize.Binary -> Coop_trace.Codec.to_string ~syms trace
        | Serialize.Text -> Serialize.to_string ~syms trace);
      (* stdout is the trace stream; the summary goes to stderr. *)
      summary stderr
    end
    else begin
      Serialize.save ~format:dst_format ~syms dst trace;
      summary stdout
    end
  in
  let src_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SRC"
          ~doc:
            "Trace file to read (either format, auto-detected), or `-` \
             for standard input.")
  in
  let dst_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DST"
          ~doc:"File to write, or `-` for standard output.")
  in
  let to_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "to" ] ~docv:"FMT"
          ~doc:
            "Target format: $(b,text) or $(b,binary). Default: the \
             opposite of the source's format, so a bare convert \
             round-trips.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a saved trace between the text and coop-trace/v1 binary \
          formats, display names included. Events and verdicts are \
          identical across formats; only the bytes change.")
    Term.(const action $ src_arg $ dst_arg $ to_arg)

(* --- check ------------------------------------------------------------- *)

let check_cmd =
  let action spec threads size sched max_steps from_trace two_pass shards
      witness profile =
    profile_setup profile;
    let shards = shards_of shards in
    let wmode = witness_mode_of witness in
    (* All inputs are streamed, never materialized. *)
    let source =
      source_of ~command:"check" ~two_pass ~threads ~size ~sched ~max_steps
        ~from_trace spec
    in
    let r =
      Coop_pipeline.run ~two_pass ~shards ~witness:(wmode <> None) source
    in
    Format.printf "events: %d@." r.Coop_pipeline.events;
    Format.printf "races: %d on %d variable(s)@."
      (List.length r.Coop_pipeline.races)
      (Coop_trace.Event.Var_set.cardinal r.Coop_pipeline.racy);
    List.iter
      (fun race ->
        Format.printf "  %a@." Coop_race.Report.pp race;
        print_race_witness wmode race)
      r.Coop_pipeline.races;
    let vs = r.Coop_pipeline.violations in
    Format.printf "cooperability violations: %d at %d location(s)@."
      (List.length vs)
      (Coop_trace.Loc.Set.cardinal (Coop_core.Cooperability.violation_locs vs));
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (v : Coop_core.Automaton.violation) ->
        if not (Hashtbl.mem seen v.Coop_core.Automaton.loc) then begin
          Hashtbl.add seen v.Coop_core.Automaton.loc ();
          Format.printf "  %a@." Coop_core.Automaton.pp_violation v;
          print_cause wmode v.Coop_core.Automaton.cause
        end)
      vs;
    let dl = r.Coop_pipeline.deadlock in
    if dl.Coop_core.Deadlock.cycles <> [] then begin
      Format.printf "potential deadlocks (lock-order cycles):@.";
      List.iter
        (fun c -> Format.printf "  %a@." Coop_core.Deadlock.pp_cycle c)
        dl.Coop_core.Deadlock.cycles
    end;
    if vs = [] && dl.Coop_core.Deadlock.cycles = [] then
      Format.printf "program trace is COOPERABLE (and lock-order acyclic)@."
    else if vs = [] then
      Format.printf "program trace is cooperable, but see deadlock warnings@.";
    (match wmode with
    | Some (Witness.Json dest) ->
        emit_witness_doc dest
          (witness_doc ~command:"check"
             [ ("events", Json.Int r.Coop_pipeline.events);
               ("races", Json.List (List.map race_json r.Coop_pipeline.races));
               ("violations", Json.List (List.map violation_json vs)) ])
    | _ -> ());
    profile_emit profile;
    if vs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Race + cooperability check of one execution. Exits 1 on violations.")
    Term.(const action $ opt_prog_arg $ threads_arg $ size_arg $ sched_arg
          $ max_steps_arg $ from_trace_arg $ two_pass_arg $ shards_arg
          $ witness_arg $ profile_term)

(* --- explain ------------------------------------------------------------ *)

(* check with witnesses always on, plus the self-check: the trace is
   recorded (not streamed) so every race witness can be replayed through
   the vector-clock oracle — a verdict whose evidence fails there is a
   detector bug, and explain says so loudly. *)
let explain_cmd =
  let action spec threads size sched max_steps from_trace two_pass shards
      witness profile =
    profile_setup profile;
    let shards = shards_of shards in
    let wmode = witness_mode_of witness in
    (* The oracle replays the trace, so explain always materializes it —
       which is also what lets a piped trace through: one read suffices. *)
    let trace =
      match from_trace with
      | Some "-" -> Source.record (stdin_source ())
      | Some path -> Source.record (Source.of_file path)
      | None -> (
          match spec with
          | Some spec ->
              let prog = load ~threads ~size spec in
              snd (Runner.record ~max_steps ~sched:(scheduler_of sched) prog)
          | None ->
              Printf.eprintf
                "coopcheck: explain wants a PROGRAM or --trace FILE\n";
              exit 2)
    in
    let r = Coop_core.Cooperability.check ~two_pass ~shards ~witness:true trace in
    (* One oracle replay serves every witness on this trace. *)
    let clocks = Coop_race.Witness_check.oracle trace in
    let verdicts =
      List.map
        (fun race ->
          (race, Coop_race.Witness_check.check_report ~clocks trace race))
        r.Coop_core.Cooperability.races
    in
    Format.printf "events: %d@." r.Coop_core.Cooperability.events;
    Format.printf "races: %d on %d variable(s)@."
      (List.length r.Coop_core.Cooperability.races)
      (Coop_trace.Event.Var_set.cardinal r.Coop_core.Cooperability.racy);
    List.iter
      (fun ((race : Coop_race.Report.t), verdict) ->
        Format.printf "  %a@." Coop_race.Report.pp race;
        (match race.Coop_race.Report.witness with
        | Some w -> Format.printf "    witness: %a@." Witness.pp w
        | None -> ());
        match verdict with
        | Ok () -> Format.printf "    hb-check: verified@."
        | Error e -> Format.printf "    hb-check: FAILED (%s)@." e)
      verdicts;
    let vs = r.Coop_core.Cooperability.violations in
    Format.printf "cooperability violations: %d at %d location(s)@."
      (List.length vs)
      (Coop_trace.Loc.Set.cardinal (Coop_core.Cooperability.violation_locs vs));
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (v : Coop_core.Automaton.violation) ->
        if not (Hashtbl.mem seen v.Coop_core.Automaton.loc) then begin
          Hashtbl.add seen v.Coop_core.Automaton.loc ();
          Format.printf "  %a@." Coop_core.Automaton.pp_violation v;
          match v.Coop_core.Automaton.cause with
          | Some c -> Format.printf "    cause: %a@." pp_cause c
          | None -> ()
        end)
      vs;
    let failed =
      List.filter (fun (_, verdict) -> Result.is_error verdict) verdicts
    in
    Format.printf "witness self-check: %d/%d race witness(es) verified@."
      (List.length verdicts - List.length failed)
      (List.length verdicts);
    (match wmode with
    | Some (Witness.Json dest) ->
        let race_entry (race, verdict) =
          match race_json race with
          | Json.Obj fields ->
              Json.Obj
                (fields @ [ ("verified", Json.Bool (Result.is_ok verdict)) ])
          | j -> j
        in
        emit_witness_doc dest
          (witness_doc ~command:"explain"
             [ ("events", Json.Int r.Coop_core.Cooperability.events);
               ("races", Json.List (List.map race_entry verdicts));
               ("violations", Json.List (List.map violation_json vs)) ])
    | _ -> ());
    profile_emit profile;
    if failed <> [] then begin
      List.iter
        (fun ((race : Coop_race.Report.t), verdict) ->
          match verdict with
          | Error e ->
              Format.eprintf "coopcheck: witness self-check failed for %a: %s@."
                Coop_race.Report.pp race e
          | Ok () -> ())
        failed;
      exit 1
    end;
    if vs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Check one execution with witnesses on and print the causal \
          evidence behind every verdict: the unordered access pair (and \
          clock comparison) behind each race — replayed through the \
          happens-before oracle as a self-check — and the commit point \
          behind each violation. Exits 1 on violations or a failed \
          self-check.")
    Term.(const action $ opt_prog_arg $ threads_arg $ size_arg $ sched_arg
          $ max_steps_arg $ from_trace_arg $ two_pass_arg $ shards_arg
          $ witness_arg $ profile_term)

(* --- infer ------------------------------------------------------------- *)

(* Trace-mode inference: with no program to re-execute there is no
   fixpoint — one single-pass analysis of the recorded execution, whose
   distinct violation locations are exactly what round 0 of the full
   inference would plant yields at. A lower bound on the final yield
   set, reported as round 0 under schedule "trace"; the re-execution
   metrics are unavailable and skipped. *)
let infer_from_trace ~wmode file =
  let syms = Symtab.create () in
  let source =
    if file = "-" then stdin_source ~syms () else Source.of_file ~syms file
  in
  let r = Coop_pipeline.run ~witness:(wmode <> None) source in
  let vs = r.Coop_pipeline.violations in
  let yields = Coop_core.Cooperability.violation_locs vs in
  Format.printf "initial violations: %d@." (List.length vs);
  Format.printf "inference rounds: 0 (trace mode: no re-execution)@.";
  Format.printf "inferred yields: %d@." (Coop_trace.Loc.Set.cardinal yields);
  let viol_at l =
    List.find_opt
      (fun (v : Coop_core.Automaton.violation) ->
        Coop_trace.Loc.equal v.Coop_core.Automaton.loc l)
      vs
  in
  Coop_trace.Loc.Set.iter
    (fun l ->
      let fname =
        match Symtab.find syms Symtab.Func l.Coop_trace.Loc.func with
        | Some name -> name
        | None -> Printf.sprintf "f%d" l.Coop_trace.Loc.func
      in
      Format.printf "  yield before %s line %d (%a)@." fname
        l.Coop_trace.Loc.line Coop_trace.Loc.pp l;
      match (wmode, viol_at l) with
      | Some Witness.Text, Some v ->
          Format.printf "    forced by trace in round 0: %a@."
            Coop_core.Automaton.pp_violation v;
          print_cause wmode v.Coop_core.Automaton.cause
      | _ -> ())
    yields;
  match wmode with
  | Some (Witness.Json dest) ->
      let yield_json l (v : Coop_core.Automaton.violation) =
        Json.Obj
          [ ("loc", Json.String (loc_string l));
            ("round", Json.Int 0);
            ("sched", Json.String "trace");
            ("violation", violation_json v) ]
      in
      let yields_json =
        Coop_trace.Loc.Set.fold
          (fun l acc ->
            match viol_at l with Some v -> yield_json l v :: acc | None -> acc)
          yields []
        |> List.rev
      in
      emit_witness_doc dest
        (witness_doc ~command:"infer"
           [ ("rounds", Json.Int 0); ("yields", Json.List yields_json) ])
  | _ -> ()

(* --no-cache / --stats are shared by explore and infer: both drive the
   same replay-elision checkpoint machinery. *)
let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the replay-elision checkpoint store and re-derive every \
           prefix from the initial state (the stateless differential \
           oracle). Identical results, more re-executed work.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After the report, print a replay-elision table: executions, \
           novel vs replayed steps, cache hit rate and peak checkpoint \
           bytes.")

(* The replay-elision statistics table. [rows] carries the command's own
   counters; hit rate and peak bytes come from the checkpoint store
   (when caching was on). *)
let print_replay_stats ~title rows ckpt =
  let t =
    Coop_util.Table.create
      ~headers:
        [ ("metric", Coop_util.Table.Left); ("value", Coop_util.Table.Right) ]
  in
  List.iter (fun (k, v) -> Coop_util.Table.add_row t [ k; v ]) rows;
  (match ckpt with
  | None ->
      Coop_util.Table.add_row t [ "cache hit rate"; "off" ];
      Coop_util.Table.add_row t [ "peak checkpoint bytes"; "0" ]
  | Some s ->
      let total = s.Coop_util.Ckpt_cache.hits + s.Coop_util.Ckpt_cache.misses in
      let rate =
        if total = 0 then "n/a"
        else
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int s.Coop_util.Ckpt_cache.hits
            /. float_of_int total)
      in
      Coop_util.Table.add_row t [ "cache hit rate"; rate ];
      Coop_util.Table.add_row t
        [ "peak checkpoint bytes";
          string_of_int s.Coop_util.Ckpt_cache.peak_bytes ]);
  Coop_util.Table.print ~title t

let infer_cmd =
  let action spec threads size max_steps max_executions max_depth max_segment
      no_cache stats jobs witness profile from_trace =
    profile_setup profile;
    let wmode = witness_mode_of witness in
    match from_trace with
    | Some file ->
        infer_from_trace ~wmode file;
        profile_emit profile
    | None ->
    let prog =
      match spec with
      | Some spec -> load ~threads ~size spec
      | None ->
          Printf.eprintf "coopcheck: infer wants a PROGRAM or --trace FILE\n";
          exit 2
    in
    let pool = pool_of_jobs jobs in
    (* Budget mapping for the inference engine: --max-executions caps the
       total portfolio runs (rounded down to whole rounds, at least one);
       --max-depth bounds the transitions of any single run, tightening
       --max-steps. --max-segment has nothing to bound here — inference
       streams at instruction granularity, so there is no invisible
       prefix — but it is validated uniformly with explore. *)
    ignore (max_segment : int option);
    let max_rounds =
      Option.map
        (fun n ->
          max 1 (n / List.length Coop_core.Infer.default_portfolio))
        max_executions
    in
    let max_steps =
      match max_depth with None -> max_steps | Some d -> min max_steps d
    in
    let ckpt =
      if no_cache then None else Some (Coop_core.Infer.prefix_cache ())
    in
    let inf =
      Coop_core.Infer.infer ~pool ?max_rounds ~max_steps ~no_cache ?ckpt prog
    in
    Format.printf "initial violations: %d@."
      inf.Coop_core.Infer.initial_violations;
    Format.printf "inference rounds: %d@." inf.Coop_core.Infer.rounds;
    Format.printf "inferred yields: %d@."
      (Coop_trace.Loc.Set.cardinal inf.Coop_core.Infer.yields);
    (* The witness chain lives on the inference result: per yield, the
       round, schedule and first violation that forced it. *)
    let witness_of_loc l =
      List.find_opt
        (fun (yw : Coop_core.Infer.yield_witness) ->
          Coop_trace.Loc.equal yw.Coop_core.Infer.yw_loc l)
        inf.Coop_core.Infer.witnesses
    in
    Coop_trace.Loc.Set.iter
      (fun l ->
        let f = (Vm.program (Vm.init prog)).Coop_lang.Bytecode.funcs.(l.Coop_trace.Loc.func) in
        Format.printf "  yield before %s line %d (%a)@."
          f.Coop_lang.Bytecode.name l.Coop_trace.Loc.line Coop_trace.Loc.pp l;
        match (wmode, witness_of_loc l) with
        | Some Witness.Text, Some yw ->
            Format.printf "    forced by %s in round %d: %a@."
              yw.Coop_core.Infer.yw_sched yw.Coop_core.Infer.yw_round
              Coop_core.Automaton.pp_violation yw.Coop_core.Infer.yw_viol;
            print_cause wmode yw.Coop_core.Infer.yw_viol.Coop_core.Automaton.cause
        | _ -> ())
      inf.Coop_core.Infer.yields;
    (match wmode with
    | Some (Witness.Json dest) ->
        let yield_json (yw : Coop_core.Infer.yield_witness) =
          Json.Obj
            [ ("loc", Json.String (loc_string yw.Coop_core.Infer.yw_loc));
              ("round", Json.Int yw.Coop_core.Infer.yw_round);
              ("sched", Json.String yw.Coop_core.Infer.yw_sched);
              ("violation", violation_json yw.Coop_core.Infer.yw_viol) ]
        in
        emit_witness_doc dest
          (witness_doc ~command:"infer"
             [ ("rounds", Json.Int inf.Coop_core.Infer.rounds);
               ("yields",
                Json.List
                  (List.map yield_json inf.Coop_core.Infer.witnesses)) ])
    | _ -> ());
    let _, m =
      Runner.analyze ~yields:inf.Coop_core.Infer.yields ~max_steps
        ~sched:(Sched.random ~seed:17 ())
        (Coop_core.Metrics.analysis prog ~inferred:inf.Coop_core.Infer.yields ())
        prog
    in
    Format.printf "%a@." Coop_core.Metrics.pp m;
    if stats then begin
      let executions =
        inf.Coop_core.Infer.rounds
        * List.length Coop_core.Infer.default_portfolio
      in
      print_replay_stats ~title:"replay elision (infer)"
        [ ("rounds", string_of_int inf.Coop_core.Infer.rounds);
          ("schedule executions", string_of_int executions);
          ("events analyzed", string_of_int inf.Coop_core.Infer.events_analyzed);
          ("prefix events", string_of_int inf.Coop_core.Infer.prefix_events);
          ("elided events", string_of_int inf.Coop_core.Infer.elided_events);
          ("cache hits", string_of_int inf.Coop_core.Infer.cache_hits) ]
        (Option.map Coop_util.Ckpt_cache.stats ckpt)
    end;
    profile_emit profile
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "Infer the yield set and report annotation metrics. With --trace, \
          report the violation locations of the recorded execution as the \
          round-0 yield set (no re-execution, so no fixpoint or metrics).")
    Term.(const action $ opt_prog_arg $ threads_arg $ size_arg $ max_steps_arg
          $ budget_opt_term ~flag:"max-executions"
              ~doc:
                "Cap the total portfolio schedule executions across \
                 inference rounds (rounded down to whole rounds)."
          $ budget_opt_term ~flag:"max-depth"
              ~doc:
                "Transition budget for any single portfolio run (tightens \
                 --max-steps)."
          $ budget_opt_term ~flag:"max-segment"
              ~doc:
                "Invisible-prefix fuel, validated uniformly with explore; \
                 the inference engine streams at instruction granularity, \
                 so the value is otherwise unused."
          $ no_cache_arg $ stats_arg $ jobs_arg $ witness_arg $ profile_term
          $ from_trace_arg)

(* --- atomize ------------------------------------------------------------ *)

let atomize_cmd =
  let action spec threads size sched max_steps from_trace two_pass shards
      witness profile =
    profile_setup profile;
    let shards = shards_of shards in
    let wmode = witness_mode_of witness in
    let source =
      source_of ~command:"atomize" ~two_pass ~threads ~size ~sched ~max_steps
        ~from_trace spec
    in
    let p =
      Coop_pipeline.run ~atomize:true ~conflict:true ~two_pass ~shards
        ~witness:(wmode <> None) source
    in
    let r = Option.get p.Coop_pipeline.atomizer in
    Format.printf "transactions: %d, violated: %d@."
      r.Coop_atomicity.Atomizer.activations
      r.Coop_atomicity.Atomizer.violated_activations;
    Format.printf "atomicity warnings: %d in %d function(s)@."
      (List.length r.Coop_atomicity.Atomizer.warnings)
      (List.length r.Coop_atomicity.Atomizer.flagged_functions);
    let shown = ref 0 in
    List.iter
      (fun (w : Coop_atomicity.Atomizer.warning) ->
        if !shown < 20 then begin
          incr shown;
          Format.printf "  %a@." Coop_atomicity.Atomizer.pp_warning w;
          print_cause wmode w.Coop_atomicity.Atomizer.cause
        end)
      r.Coop_atomicity.Atomizer.warnings;
    let c = Option.get p.Coop_pipeline.conflict in
    Format.printf
      "conflict graph: %d transactions, %d edges, serializable=%b@."
      c.Coop_atomicity.Conflict.transactions c.Coop_atomicity.Conflict.edges
      (not c.Coop_atomicity.Conflict.cyclic);
    (match wmode with
    | Some (Witness.Json dest) ->
        let txn_json = function
          | Coop_atomicity.Atomizer.Func i -> Json.Obj [ ("func", Json.Int i) ]
          | Coop_atomicity.Atomizer.Block l ->
              Json.Obj [ ("block", Json.String (loc_string l)) ]
        in
        let warning_json (w : Coop_atomicity.Atomizer.warning) =
          Json.Obj
            [ ("tid", Json.Int w.Coop_atomicity.Atomizer.tid);
              ("txn", txn_json w.Coop_atomicity.Atomizer.txn);
              ("loc", Json.String (loc_string w.Coop_atomicity.Atomizer.loc));
              ("op",
               Json.String
                 (Format.asprintf "%a" Coop_trace.Event.pp_op
                    w.Coop_atomicity.Atomizer.op));
              ("mover",
               Json.String
                 (Coop_core.Mover.to_string w.Coop_atomicity.Atomizer.mover));
              ("cause", opt_cause_json w.Coop_atomicity.Atomizer.cause) ]
        in
        emit_witness_doc dest
          (witness_doc ~command:"atomize"
             [ ("warnings",
                Json.List
                  (List.map warning_json r.Coop_atomicity.Atomizer.warnings))
             ])
    | _ -> ());
    profile_emit profile
  in
  Cmd.v
    (Cmd.info "atomize" ~doc:"Atomicity baseline (Atomizer + conflict graph).")
    Term.(const action $ opt_prog_arg $ threads_arg $ size_arg $ sched_arg
          $ max_steps_arg $ from_trace_arg $ two_pass_arg $ shards_arg
          $ witness_arg $ profile_term)

(* --- explore ------------------------------------------------------------ *)

let explore_cmd =
  let action spec threads size max_states max_executions max_depth max_segment
      with_inferred use_dpor no_cache stats jobs profile =
    profile_setup profile;
    let prog = load ~threads ~size spec in
    let pool = pool_of_jobs jobs in
    let yields =
      if with_inferred then
        (Coop_core.Infer.infer ~pool prog).Coop_core.Infer.yields
      else Coop_trace.Loc.Set.empty
    in
    (* One explicit store per invocation so --stats can read its counters
       afterwards; omitted entirely when the oracle path is requested. *)
    let ckpt = if no_cache then None else Some (Dpor.default_cache ()) in
    if use_dpor then begin
      (* DPOR counts executions, not states: --max-executions defaults to
         the --max-states budget, as before the flags were split. *)
      let max_executions = Option.value max_executions ~default:max_states in
      let r =
        Dpor.run ~pool ~yields ~max_executions ?max_depth ?max_segment
          ~no_cache ?ckpt prog
      in
      Format.printf "dpor: %d executions, %d transitions, complete=%b@."
        r.Dpor.executions r.Dpor.steps r.Dpor.complete;
      Behavior.Set.iter
        (fun b -> Format.printf "  %a@." Behavior.pp b)
        r.Dpor.behaviors;
      if stats then
        print_replay_stats ~title:"replay elision (dpor)"
          [ ("executions", string_of_int r.Dpor.executions);
            ("novel steps", string_of_int r.Dpor.novel_steps);
            ("replayed steps", string_of_int r.Dpor.replayed_steps);
            ("total steps", string_of_int r.Dpor.steps);
            ("cache hits", string_of_int r.Dpor.cache_hits) ]
          (Option.map Coop_util.Ckpt_cache.stats ckpt)
    end
    else begin
      ignore (max_executions : int option);
      ignore (max_depth : int option);
      let v =
        Coop_core.Equivalence.compare ~pool ~yields ~max_states ?max_segment
          ~no_cache ?ckpt prog
      in
      Format.printf "%a@." Coop_core.Equivalence.pp v;
      Behavior.Set.iter
        (fun b -> Format.printf "  preemptive:  %a@." Behavior.pp b)
        v.Coop_core.Equivalence.preemptive.Explore.behaviors;
      Behavior.Set.iter
        (fun b -> Format.printf "  cooperative: %a@." Behavior.pp b)
        v.Coop_core.Equivalence.cooperative.Explore.behaviors;
      if stats then begin
        let pre = v.Coop_core.Equivalence.preemptive in
        let coop = v.Coop_core.Equivalence.cooperative in
        print_replay_stats ~title:"replay elision (explore)"
          [ ("states (preemptive)", string_of_int pre.Explore.states);
            ("states (cooperative)", string_of_int coop.Explore.states);
            ( "novel steps",
              string_of_int
                (pre.Explore.novel_steps + coop.Explore.novel_steps) );
            ( "replayed steps",
              string_of_int
                (pre.Explore.replayed_steps + coop.Explore.replayed_steps) );
            ( "cache hits",
              string_of_int (pre.Explore.cache_hits + coop.Explore.cache_hits)
            ) ]
          (Option.map Coop_util.Ckpt_cache.stats ckpt)
      end
    end;
    profile_emit profile
  in
  let max_states_arg =
    budget_term ~flag:"max-states" ~default:200_000
      ~doc:"State budget for exploration."
  in
  let with_inferred_arg =
    Arg.(
      value & flag
      & info [ "with-inferred-yields" ]
          ~doc:"Infer yields first and explore with them injected.")
  in
  let dpor_arg =
    Arg.(
      value & flag
      & info [ "dpor" ]
          ~doc:
            "Use stateless sleep-set DPOR instead of the stateful DFS \
             (preemptive behaviours only; terminating programs only).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Enumerate behaviours under preemptive vs cooperative scheduling.")
    Term.(const action $ prog_arg $ threads_arg $ size_arg $ max_states_arg
          $ budget_opt_term ~flag:"max-executions"
              ~doc:
                "Execution budget for the DPOR explorer (defaults to the \
                 --max-states value)."
          $ budget_opt_term ~flag:"max-depth"
              ~doc:"Transition budget per DPOR execution (default 10_000)."
          $ budget_opt_term ~flag:"max-segment"
              ~doc:
                "Invisible-instruction fuel per scheduling decision \
                 (default 100_000)."
          $ with_inferred_arg $ dpor_arg $ no_cache_arg $ stats_arg
          $ jobs_arg $ profile_term)

(* --- static ------------------------------------------------------------- *)

let static_cmd =
  let action spec threads size =
    let prog = load ~threads ~size spec in
    let r = Coop_static.Check.infer prog in
    Format.printf "static may-racy regions: %d@."
      (List.length r.Coop_static.Check.races.Coop_static.Races.racy);
    List.iter
      (fun region ->
        Format.printf "  %a@." (Coop_static.Races.pp_region prog) region)
      r.Coop_static.Check.races.Coop_static.Races.racy;
    Format.printf "shared lock groups: %s@."
      (String.concat ", "
         (List.map
            (fun g -> prog.Coop_lang.Bytecode.lock_names.(g))
            r.Coop_static.Check.races.Coop_static.Races.shared_groups));
    Format.printf "static violations: %d@."
      (List.length r.Coop_static.Check.violations);
    Format.printf "static yields: %d (in %d rounds)@."
      (Coop_trace.Loc.Set.cardinal r.Coop_static.Check.yields)
      r.Coop_static.Check.rounds;
    Coop_trace.Loc.Set.iter
      (fun l ->
        Format.printf "  yield before %s line %d (%a)@."
          prog.Coop_lang.Bytecode.funcs.(l.Coop_trace.Loc.func)
            .Coop_lang.Bytecode.name l.Coop_trace.Loc.line Coop_trace.Loc.pp l)
      r.Coop_static.Check.yields
  in
  Cmd.v
    (Cmd.info "static"
       ~doc:
         "Purely static cooperability analysis (no execution): abstract \
          lockset dataflow, may-race regions, static yield inference.")
    Term.(const action $ prog_arg $ threads_arg $ size_arg)

(* --- list / dump -------------------------------------------------------- *)

let list_cmd =
  let action () =
    let t =
      Coop_util.Table.create
        ~headers:
          [ ("workload", Coop_util.Table.Left);
            ("threads", Coop_util.Table.Right);
            ("size", Coop_util.Table.Right);
            ("description", Coop_util.Table.Left) ]
    in
    List.iter
      (fun (e : Coop_workloads.Registry.entry) ->
        Coop_util.Table.add_row t
          [ e.Coop_workloads.Registry.name;
            string_of_int e.Coop_workloads.Registry.default_threads;
            string_of_int e.Coop_workloads.Registry.default_size;
            e.Coop_workloads.Registry.description ])
      Coop_workloads.Registry.all;
    Coop_util.Table.print ~title:"Built-in workloads (defaults shown)" t
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads.")
    Term.(const action $ const ())

let dump_cmd =
  let action spec threads size =
    let prog = load ~threads ~size spec in
    print_string (Coop_lang.Bytecode.disassemble prog)
  in
  Cmd.v (Cmd.info "dump" ~doc:"Disassemble the compiled bytecode.")
    Term.(const action $ prog_arg $ threads_arg $ size_arg)

let () =
  validate_env_jobs ();
  validate_env_shards ();
  let info =
    Cmd.info "coopcheck" ~version:"1.0.0"
      ~doc:"Cooperative reasoning for preemptive execution"
  in
  let group =
    Cmd.group info
      [ run_cmd; trace_cmd; convert_cmd; check_cmd; explain_cmd; infer_cmd;
        atomize_cmd; explore_cmd; static_cmd; list_cmd; dump_cmd ]
  in
  (* Uniform trace-error surface: whatever subcommand touched a trace,
     a malformed or truncated file exits 2 with the decoder's position
     ("(line N)" for text, "(byte N)" for binary) rather than dying
     with a backtrace. ~catch:false keeps cmdliner from eating the
     exceptions first. *)
  match Cmd.eval ~catch:false group with
  | exception Coop_trace.Wire.Parse_error (msg, _) ->
      Printf.eprintf "coopcheck: malformed trace: %s\n" msg;
      exit 2
  | exception Coop_trace.Wire.Encode_error msg ->
      Printf.eprintf "coopcheck: %s\n" msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "coopcheck: %s\n" msg;
      exit 2
  | code -> exit code
