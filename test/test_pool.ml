(* Unit tests for the shared domain work pool (Coop_util.Pool): order
   preservation at several pool sizes, exception propagation, nested
   submission on one pool (the helping invariant), and a queue-contention
   stress run. *)

open Coop_util

let with_pool jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_order_preserved () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let xs = List.init 97 Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "squares in order, jobs=%d" jobs)
            (List.map (fun x -> x * x) xs)
            (Pool.parallel_map p (fun x -> x * x) xs)))
    [ 1; 2; 4 ]

let test_empty_and_singleton () =
  with_pool 3 (fun p ->
      Alcotest.(check (list int)) "empty" []
        (Pool.parallel_map p (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 14 ]
        (Pool.parallel_map p (fun x -> x * 2) [ 7 ]))

exception Boom of int

let test_exception_reraised () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          match
            Pool.parallel_map p
              (fun x -> if x mod 7 = 5 then raise (Boom x) else x)
              (List.init 30 Fun.id)
          with
          | _ -> Alcotest.fail "expected Boom to propagate"
          | exception Boom x ->
              Alcotest.(check bool)
                (Printf.sprintf "a failing index escaped, jobs=%d" jobs)
                true (x mod 7 = 5)))
    [ 1; 2; 4 ]

(* The pool survives a batch that failed: subsequent batches still work. *)
let test_usable_after_failure () =
  with_pool 4 (fun p ->
      (try ignore (Pool.parallel_map p (fun _ -> raise Exit) [ 1; 2; 3 ])
       with Exit -> ());
      Alcotest.(check (list int)) "next batch ok" [ 2; 4; 6 ]
        (Pool.parallel_map p (fun x -> 2 * x) [ 1; 2; 3 ]))

(* Nested parallel_map on the SAME pool: the submitter must help drain the
   queue instead of deadlocking while its inner batch waits. *)
let test_nested_same_pool () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let table =
            Pool.parallel_map p
              (fun i ->
                Pool.parallel_map p (fun j -> (10 * i) + j) (List.init 6 Fun.id))
              (List.init 6 Fun.id)
          in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "6x6 nested table, jobs=%d" jobs)
            (List.init 6 (fun i -> List.init 6 (fun j -> (10 * i) + j)))
            table))
    [ 1; 2; 4 ]

let test_stress () =
  with_pool 4 (fun p ->
      let n = 2000 in
      let expected = List.init n (fun i -> (i * i) + 1) in
      Alcotest.(check int) "stress batch sums match"
        (List.fold_left ( + ) 0 expected)
        (List.fold_left ( + ) 0
           (Pool.parallel_map p (fun i -> (i * i) + 1) (List.init n Fun.id))))

let test_default_jobs_override () =
  Pool.set_default_jobs 3;
  Alcotest.(check int) "override wins" 3 (Pool.default_jobs ());
  Alcotest.(check int) "shared pool resized" 3 (Pool.jobs (Pool.shared ()));
  Pool.set_default_jobs 1;
  Alcotest.(check int) "shrinks back" 1 (Pool.jobs (Pool.shared ()))

let suite =
  [
    Alcotest.test_case "parallel_map preserves order" `Quick
      test_order_preserved;
    Alcotest.test_case "empty and singleton inputs" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "worker exceptions re-raised" `Quick
      test_exception_reraised;
    Alcotest.test_case "pool usable after a failed batch" `Quick
      test_usable_after_failure;
    Alcotest.test_case "nested batches on one pool" `Quick
      test_nested_same_pool;
    Alcotest.test_case "2000-task stress" `Quick test_stress;
    Alcotest.test_case "set_default_jobs resizes the shared pool" `Quick
      test_default_jobs_override;
  ]
