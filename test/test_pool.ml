(* Unit tests for the work-stealing domain pool (Coop_util.Pool): order
   preservation at several pool sizes, exception propagation through both
   parallel_map and spawn/await, nested submission on one pool (the
   helping invariant), skewed fork-join spawn trees, per-pool monitors,
   jobs-argument parsing, and a queue-contention stress run. *)

open Coop_util

let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_order_preserved () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let xs = List.init 97 Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "squares in order, jobs=%d" jobs)
            (List.map (fun x -> x * x) xs)
            (Pool.parallel_map p (fun x -> x * x) xs)))
    [ 1; 2; 4 ]

let test_empty_and_singleton () =
  with_pool 3 (fun p ->
      Alcotest.(check (list int)) "empty" []
        (Pool.parallel_map p (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 14 ]
        (Pool.parallel_map p (fun x -> x * 2) [ 7 ]))

exception Boom of int

let test_exception_reraised () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          match
            Pool.parallel_map p
              (fun x -> if x mod 7 = 5 then raise (Boom x) else x)
              (List.init 30 Fun.id)
          with
          | _ -> Alcotest.fail "expected Boom to propagate"
          | exception Boom x ->
              Alcotest.(check bool)
                (Printf.sprintf "a failing index escaped, jobs=%d" jobs)
                true (x mod 7 = 5)))
    [ 1; 2; 4 ]

(* The pool survives a batch that failed: subsequent batches still work. *)
let test_usable_after_failure () =
  with_pool 4 (fun p ->
      (try ignore (Pool.parallel_map p (fun _ -> raise Exit) [ 1; 2; 3 ])
       with Exit -> ());
      Alcotest.(check (list int)) "next batch ok" [ 2; 4; 6 ]
        (Pool.parallel_map p (fun x -> 2 * x) [ 1; 2; 3 ]))

(* Nested parallel_map on the SAME pool: the submitter must help drain the
   queue instead of deadlocking while its inner batch waits. *)
let test_nested_same_pool () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let table =
            Pool.parallel_map p
              (fun i ->
                Pool.parallel_map p (fun j -> (10 * i) + j) (List.init 6 Fun.id))
              (List.init 6 Fun.id)
          in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "6x6 nested table, jobs=%d" jobs)
            (List.init 6 (fun i -> List.init 6 (fun j -> (10 * i) + j)))
            table))
    [ 1; 2; 4 ]

let test_stress () =
  with_pool 4 (fun p ->
      let n = 2000 in
      let expected = List.init n (fun i -> (i * i) + 1) in
      Alcotest.(check int) "stress batch sums match"
        (List.fold_left ( + ) 0 expected)
        (List.fold_left ( + ) 0
           (Pool.parallel_map p (fun i -> (i * i) + 1) (List.init n Fun.id))))

(* Recursive fork-join over a deliberately skewed tree: tasks spawn
   subtasks from inside tasks at every level and await them, so any
   domain can end up waiting on work another domain stole. No deadlock
   and the right total at every pool size is the core work-stealing
   invariant. *)
let test_skewed_spawn_tree () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          let rec sum lo hi =
            if hi - lo <= 1 then lo
            else begin
              (* Uneven split: the left subtree stays small while the
                 right one carries most of the range. *)
              let mid = lo + 1 + ((hi - lo) / 4) in
              let right = Pool.spawn p (fun () -> sum mid hi) in
              let left = sum lo mid in
              left + Pool.await p right
            end
          in
          let n = 600 in
          Alcotest.(check int)
            (Printf.sprintf "skewed spawn tree sums, jobs=%d" jobs)
            (n * (n - 1) / 2)
            (sum 0 n)))
    [ 1; 2; 4; 8 ]

(* Exceptions from spawned tasks surface at the matching await, with the
   pool still usable afterwards. *)
let test_spawn_await_exception () =
  with_pool 2 (fun p ->
      let bad = Pool.spawn p (fun () -> raise (Boom 42)) in
      let good = Pool.spawn p (fun () -> 7) in
      (match Pool.await p bad with
      | _ -> Alcotest.fail "expected Boom from await"
      | exception Boom n -> Alcotest.(check int) "payload intact" 42 n);
      Alcotest.(check int) "later promise unaffected" 7 (Pool.await p good))

(* A monitor attached to one pool sees that pool's traffic and nothing
   from other pools; detaching it stops the reports. *)
let test_per_pool_monitor () =
  let submits = Atomic.make 0 and wrapped = Atomic.make 0 in
  let monitor =
    {
      Pool.on_submit = (fun ~queued:_ -> Atomic.incr submits);
      wrap_task =
        (fun f () ->
          Atomic.incr wrapped;
          f ());
      on_steal = (fun ~thief:_ ~victim:_ ~latency_s:_ -> ());
      on_deque_depth = (fun ~slot:_ ~depth:_ -> ());
    }
  in
  let p = Pool.create ~monitor ~jobs:2 () in
  let other = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p;
      Pool.shutdown other)
    (fun () ->
      ignore (Pool.parallel_map p (fun x -> x + 1) (List.init 50 Fun.id));
      let seen = Atomic.get submits in
      Alcotest.(check bool) "monitored pool reports submissions" true
        (seen >= 50);
      Alcotest.(check bool) "wrap_task ran around the tasks" true
        (Atomic.get wrapped >= 50);
      ignore (Pool.parallel_map other (fun x -> x + 1) (List.init 50 Fun.id));
      Alcotest.(check int) "unmonitored pool stays silent" seen
        (Atomic.get submits);
      Pool.set_monitor other (Some monitor);
      ignore (Pool.parallel_map other (fun x -> x + 1) (List.init 10 Fun.id));
      Alcotest.(check bool) "set_monitor attaches after create" true
        (Atomic.get submits >= seen + 10);
      Pool.set_monitor other None;
      let seen = Atomic.get submits in
      ignore (Pool.parallel_map other (fun x -> x + 1) (List.init 10 Fun.id));
      Alcotest.(check int) "set_monitor None detaches" seen
        (Atomic.get submits))

let test_parse_jobs () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check (option int))
        (Printf.sprintf "parse_jobs %S" s)
        expect (Pool.parse_jobs s))
    [ ("1", Some 1); ("8", Some 8); (" 4 ", Some 4); ("0", None);
      ("-3", None); ("abc", None); ("", None); ("2x", None) ]

let test_default_jobs_override () =
  Pool.set_default_jobs 3;
  Alcotest.(check int) "override wins" 3 (Pool.default_jobs ());
  Alcotest.(check int) "shared pool resized" 3 (Pool.jobs (Pool.shared ()));
  Pool.set_default_jobs 1;
  Alcotest.(check int) "shrinks back" 1 (Pool.jobs (Pool.shared ()))

let suite =
  [
    Alcotest.test_case "parallel_map preserves order" `Quick
      test_order_preserved;
    Alcotest.test_case "empty and singleton inputs" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "worker exceptions re-raised" `Quick
      test_exception_reraised;
    Alcotest.test_case "pool usable after a failed batch" `Quick
      test_usable_after_failure;
    Alcotest.test_case "nested batches on one pool" `Quick
      test_nested_same_pool;
    Alcotest.test_case "2000-task stress" `Quick test_stress;
    Alcotest.test_case "skewed spawn tree at 1/2/4/8 domains" `Quick
      test_skewed_spawn_tree;
    Alcotest.test_case "spawned task exceptions surface at await" `Quick
      test_spawn_await_exception;
    Alcotest.test_case "per-pool monitors" `Quick test_per_pool_monitor;
    Alcotest.test_case "parse_jobs accepts exactly positive ints" `Quick
      test_parse_jobs;
    Alcotest.test_case "set_default_jobs resizes the shared pool" `Quick
      test_default_jobs_override;
  ]
