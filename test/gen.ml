(* QCheck generators shared by the property-based suites. *)

open QCheck2
open Coop_trace
open Coop_lang

(* ------------------------------------------------------------------ *)
(* CoopLang AST generators (for the pretty/parse round trip).          *)
(* ------------------------------------------------------------------ *)

let keywords =
  [ "var"; "array"; "lock"; "fn"; "if"; "else"; "while"; "sync"; "atomic";
    "yield"; "acquire"; "release"; "spawn"; "join"; "print"; "assert";
    "return"; "true"; "false" ]

let gen_ident =
  let open Gen in
  let* first = oneofl [ "x"; "y"; "z"; "foo"; "bar"; "n"; "acc"; "tmp" ] in
  let* suffix = int_bound 99 in
  let name = Printf.sprintf "%s%d" first suffix in
  return (if List.mem name keywords then name ^ "_" else name)

let gen_binop =
  Gen.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Lt; Ast.Le; Ast.Gt;
      Ast.Ge; Ast.Eq; Ast.Ne; Ast.And; Ast.Or ]

let gen_unop = Gen.oneofl [ Ast.Neg; Ast.Not ]

let rec gen_expr n =
  let open Gen in
  if n <= 0 then
    oneof
      [ map (fun i -> Ast.Int i) (int_bound 1000);
        map (fun b -> Ast.Bool b) bool;
        map (fun x -> Ast.Var x) gen_ident ]
  else
    oneof
      [ map (fun i -> Ast.Int i) (int_bound 1000);
        map (fun x -> Ast.Var x) gen_ident;
        (let* a = gen_ident in
         let* i = gen_expr (n / 2) in
         return (Ast.Index (a, i)));
        (let* op = gen_unop in
         let* e = gen_expr (n - 1) in
         return (Ast.Unary (op, e)));
        (let* op = gen_binop in
         let* a = gen_expr (n / 2) in
         let* b = gen_expr (n / 2) in
         return (Ast.Binary (op, a, b)));
        (let* f = gen_ident in
         let* args = list_size (int_bound 3) (gen_expr (n / 3)) in
         return (Ast.Call (f, args)));
        (let* f = gen_ident in
         let* args = list_size (int_bound 2) (gen_expr (n / 3)) in
         return (Ast.Spawn (f, args))) ]

let gen_lock_ref n =
  let open Gen in
  let* lock = gen_ident in
  let* index = opt (gen_expr n) in
  return { Ast.lock; index }

let rec gen_stmt n =
  let open Gen in
  let leaf =
    oneof
      [ (let* x = gen_ident in
         let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Local (x, e))));
        (let* x = gen_ident in
         let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Assign (x, e))));
        (let* a = gen_ident in
         let* i = gen_expr 1 in
         let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Store (a, i, e))));
        return (Ast.stmt Ast.Yield);
        (let* l = gen_lock_ref 1 in
         return (Ast.stmt (Ast.Acquire_stmt l)));
        (let* l = gen_lock_ref 1 in
         return (Ast.stmt (Ast.Release_stmt l)));
        (let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Join_stmt e)));
        (let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Print e)));
        (let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Assert e)));
        (let* eo = opt (gen_expr 2) in
         return (Ast.stmt (Ast.Return eo)));
        (let* f = gen_ident in
         let* args = list_size (int_bound 2) (gen_expr 1) in
         return (Ast.stmt (Ast.Expr_stmt (Ast.Call (f, args))))) ]
  in
  if n <= 0 then leaf
  else
    oneof
      [ leaf;
        (let* c = gen_expr 2 in
         let* t = gen_block (n - 1) in
         let* e = gen_block (n - 1) in
         return (Ast.stmt (Ast.If (c, t, e))));
        (let* c = gen_expr 2 in
         let* b = gen_block (n - 1) in
         return (Ast.stmt (Ast.While (c, b))));
        (let* l = gen_lock_ref 1 in
         let* b = gen_block (n - 1) in
         return (Ast.stmt (Ast.Sync (l, b))));
        (let* b = gen_block (n - 1) in
         return (Ast.stmt (Ast.Atomic b))) ]

and gen_block n = Gen.list_size (Gen.int_bound 4) (gen_stmt n)

let gen_func =
  let open Gen in
  let* fname = gen_ident in
  let* params = list_size (int_bound 3) gen_ident in
  let* body = gen_block 2 in
  return { Ast.fname; params; body; fline = 0 }

let gen_decl =
  let open Gen in
  oneof
    [ (let* x = gen_ident in
       let* i = int_bound 100 in
       return (Ast.Gvar (x, i)));
      (let* a = gen_ident in
       let* n = int_range 1 64 in
       return (Ast.Garray (a, n)));
      (let* l = gen_ident in
       let* n = int_range 1 8 in
       return (Ast.Glock (l, n))) ]

let gen_program =
  let open Gen in
  let* decls = list_size (int_bound 5) gen_decl in
  let* funcs = list_size (int_bound 4) gen_func in
  return { Ast.decls; funcs }

(* ------------------------------------------------------------------ *)
(* Feasible trace generator (for FastTrack vs naive-HB agreement).     *)
(* ------------------------------------------------------------------ *)

(* Simulates a plausible multithreaded execution: locks are acquired only
   when free, released only by their holder, forks create fresh tids, joins
   target terminated threads. Accesses range over a small variable pool to
   make conflicts likely. *)
let gen_trace =
  let open Gen in
  let* n_events = int_range 5 120 in
  let* seed = int_bound 1_000_000 in
  return
    (let rng = Coop_util.Rng.create seed in
     let trace = Trace.create () in
     let alive = ref [ 0 ] in
     let finished = ref [] in
     let next_tid = ref 1 in
     let held = Hashtbl.create 8 in
     (* lock -> tid *)
     let vars = [| Event.Global 0; Event.Global 1; Event.Cell (0, 0);
                   Event.Cell (0, 1) |] in
     let locks = [| 0; 1; 2 |] in
     let loc = Loc.make ~func:0 ~pc:0 ~line:1 in
     let emit tid op = Trace.add trace (Event.make ~tid ~op ~loc) in
     for _ = 1 to n_events do
       match !alive with
       | [] -> ()
       | ts -> (
           let tid = Coop_util.Rng.pick rng (Array.of_list ts) in
           match Coop_util.Rng.int rng 10 with
           | 0 | 1 | 2 ->
               emit tid (Event.Read (Coop_util.Rng.pick rng vars))
           | 3 | 4 | 5 ->
               emit tid (Event.Write (Coop_util.Rng.pick rng vars))
           | 6 ->
               let l = Coop_util.Rng.pick rng locks in
               if not (Hashtbl.mem held l) then begin
                 Hashtbl.add held l tid;
                 emit tid (Event.Acquire l)
               end
           | 7 ->
               let mine =
                 Hashtbl.fold (fun l o acc -> if o = tid then l :: acc else acc)
                   held []
               in
               (match mine with
               | [] -> ()
               | l :: _ ->
                   Hashtbl.remove held l;
                   emit tid (Event.Release l))
           | 8 ->
               if !next_tid < 6 then begin
                 let child = !next_tid in
                 incr next_tid;
                 alive := child :: !alive;
                 emit tid (Event.Fork child)
               end
           | _ -> (
               match !finished with
               | [] ->
                   (* Retire a thread other than this one, if possible. *)
                   let others = List.filter (fun t -> t <> tid) !alive in
                   (match others with
                   | [] -> ()
                   | t :: _ ->
                       alive := List.filter (fun u -> u <> t) !alive;
                       (* Release its locks first so the trace stays
                          feasible (a dead thread cannot hold a lock another
                          thread later acquires). *)
                       Hashtbl.iter
                         (fun l o ->
                           if o = t then begin
                             Hashtbl.remove held l;
                             emit t (Event.Release l)
                           end)
                         (Hashtbl.copy held);
                       finished := t :: !finished)
               | f :: rest ->
                   finished := rest;
                   emit tid (Event.Join f)))
     done;
     trace)

let print_trace t = Format.asprintf "%a" Trace.pp t

(* ------------------------------------------------------------------ *)
(* Late-knowledge trace generator (single-pass vs two-pass agreement). *)
(* ------------------------------------------------------------------ *)

(* Adversarial input for the single-pass engine: a long single-threaded
   prefix opens, runs and closes many transactions (function activations,
   atomic blocks, yield-delimited segments) while every variable still
   looks race-free and every lock thread-local — then a second wave of
   threads touches the same variables and locks, so the racy/shared facts
   arrive after the transactions that depended on them were classified
   (and often closed). Feasibility rules are those of [gen_trace]. *)
let gen_late_trace =
  let open Gen in
  let* n_pre = int_range 15 70 in
  let* n_post = int_range 15 70 in
  let* seed = int_bound 1_000_000 in
  return
    (let rng = Coop_util.Rng.create seed in
     let trace = Trace.create () in
     let held = Hashtbl.create 8 in
     (* lock -> tid *)
     let depth = Hashtbl.create 8 in
     (* tid -> open Enter/Atomic markers, innermost first *)
     let vars = [| Event.Global 0; Event.Global 1; Event.Cell (0, 0);
                   Event.Cell (0, 1) |] in
     let locks = [| 0; 1; 2 |] in
     let loc () =
       Loc.make ~func:0 ~pc:(Coop_util.Rng.int rng 40) ~line:1
     in
     let emit tid op = Trace.add trace (Event.make ~tid ~op ~loc:(loc ())) in
     let emit_one tid =
       match Coop_util.Rng.int rng 12 with
       | 0 | 1 -> emit tid (Event.Read (Coop_util.Rng.pick rng vars))
       | 2 | 3 -> emit tid (Event.Write (Coop_util.Rng.pick rng vars))
       | 4 ->
           let l = Coop_util.Rng.pick rng locks in
           if not (Hashtbl.mem held l) then begin
             Hashtbl.add held l tid;
             emit tid (Event.Acquire l)
           end
       | 5 -> (
           let mine =
             Hashtbl.fold
               (fun l o acc -> if o = tid then l :: acc else acc)
               held []
           in
           match mine with
           | [] -> ()
           | l :: _ ->
               Hashtbl.remove held l;
               emit tid (Event.Release l))
       | 6 -> emit tid Event.Yield
       | 7 | 8 ->
           let opens =
             match Hashtbl.find_opt depth tid with Some d -> d | None -> []
           in
           if Coop_util.Rng.int rng 3 > 0 || opens = [] then begin
             let f = Coop_util.Rng.int rng 3 in
             if Coop_util.Rng.int rng 2 = 0 then begin
               Hashtbl.replace depth tid (`Func f :: opens);
               emit tid (Event.Enter f)
             end
             else begin
               Hashtbl.replace depth tid (`Atomic :: opens);
               emit tid Event.Atomic_begin
             end
           end
       | _ -> (
           match Hashtbl.find_opt depth tid with
           | Some (`Func f :: rest) ->
               Hashtbl.replace depth tid rest;
               emit tid (Event.Exit f)
           | Some (`Atomic :: rest) ->
               Hashtbl.replace depth tid rest;
               emit tid Event.Atomic_end
           | _ -> ())
     in
     (* Single-threaded prefix: everything optimism assumes holds. *)
     for _ = 1 to n_pre do
       emit_one 0
     done;
     (* Fork a second wave mid-stream; their accesses to the same pool
        expose races and share the locks only now. *)
     let children =
       List.init (1 + Coop_util.Rng.int rng 2) (fun i -> i + 1)
     in
     List.iter (fun c -> emit 0 (Event.Fork c)) children;
     let tids = Array.of_list (0 :: children) in
     for _ = 1 to n_post do
       emit_one (Coop_util.Rng.pick rng tids)
     done;
     (* Retire the children feasibly: release their locks, then join. *)
     List.iter
       (fun c ->
         Hashtbl.iter
           (fun l o ->
             if o = c then begin
               Hashtbl.remove held l;
               emit c (Event.Release l)
             end)
           (Hashtbl.copy held);
         emit 0 (Event.Join c))
       children;
     trace)

(* ------------------------------------------------------------------ *)
(* Well-formed concurrent program generator (whole-stack properties).  *)
(* ------------------------------------------------------------------ *)

(* Random spawn/join worker programs over shared globals, an array and two
   lock groups. All loops are bounded and all array indices masked, so every
   generated program terminates fault-free under every scheduler — the
   invariant the fuzz and pipeline-equivalence suites rely on.

   Expressions range over globals g0..g2, locals in scope and small
   constants. Division is excluded; indices are masked with
   ((e % 4) + 4) % 4 so they are always in range. *)
let gen_fuzz_expr locals =
  let open Gen in
  let leaf =
    oneof
      [ map (fun i -> Ast.Int i) (int_bound 9);
        oneofl (List.map (fun v -> Ast.Var v) ("g0" :: "g1" :: "g2" :: locals)) ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          (let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Eq ] in
           let* a = expr (n - 1) in
           let* b = expr (n - 1) in
           return (Ast.Binary (op, a, b))) ]
  in
  expr 2

let mask_index e =
  Ast.Binary
    (Ast.Mod, Ast.Binary (Ast.Add, Ast.Binary (Ast.Mod, e, Ast.Int 4), Ast.Int 4), Ast.Int 4)

(* Simple statements, optionally wrapped in sync blocks. *)
let gen_simple locals =
  let open Gen in
  oneof
    [ (let* g = oneofl [ "g0"; "g1"; "g2" ] in
       let* e = gen_fuzz_expr locals in
       return (Ast.stmt (Ast.Assign (g, e))));
      (let* i = gen_fuzz_expr locals in
       let* e = gen_fuzz_expr locals in
       return (Ast.stmt (Ast.Store ("arr", mask_index i, e))));
      (let* i = gen_fuzz_expr locals in
       let* g = oneofl [ "g0"; "g1" ] in
       return (Ast.stmt (Ast.Assign (g, Ast.Index ("arr", mask_index i)))));
      return (Ast.stmt Ast.Yield) ]

let gen_item locals counter =
  let open Gen in
  let* body = list_size (int_range 1 3) (gen_simple locals) in
  oneof
    [ return (Ast.stmt (Ast.Sync ({ Ast.lock = "m"; index = None }, body)));
      (let* idx = oneofl [ Ast.Int 0; Ast.Int 1; Ast.Var "id" ] in
       let wrap =
         match idx with
         | Ast.Var _ ->
             { Ast.lock = "ls";
               index = Some (Ast.Binary (Ast.Mod, idx, Ast.Int 2)) }
         | i -> { Ast.lock = "ls"; index = Some i }
       in
       return (Ast.stmt (Ast.Sync (wrap, body))));
      return (Ast.stmt (Ast.Block body));
      (* A bounded loop around the body. *)
      (let* bound = int_range 1 3 in
       let v = Printf.sprintf "i%d" counter in
       return
         (Ast.stmt
            (Ast.Block
               [ Ast.stmt (Ast.Local (v, Ast.Int 0));
                 Ast.stmt
                   (Ast.While
                      ( Ast.Binary (Ast.Lt, Ast.Var v, Ast.Int bound),
                        body
                        @ [ Ast.stmt
                              (Ast.Assign
                                 (v, Ast.Binary (Ast.Add, Ast.Var v, Ast.Int 1)))
                          ] )) ]))) ]

let gen_worker_body =
  let open Gen in
  let* n = int_range 2 5 in
  let rec go k acc =
    if k = 0 then return (List.rev acc)
    else
      let* item = gen_item [ "id" ] k in
      go (k - 1) (item :: acc)
  in
  go n []

(* Like [gen_item] but biased toward late knowledge: bodies may run
   unsynchronized (no lock at all) or inside [atomic] blocks, so raciness
   and lock-sharedness facts surface only once a second worker reaches the
   same data — after the first worker's transactions were classified. *)
let gen_late_item locals counter =
  let open Gen in
  let* body = list_size (int_range 1 3) (gen_simple locals) in
  oneof
    [ return (Ast.stmt (Ast.Atomic body));
      return (Ast.stmt (Ast.Block body));
      return (Ast.stmt (Ast.Sync ({ Ast.lock = "m"; index = None }, body)));
      (let v = Printf.sprintf "j%d" counter in
       let* bound = int_range 1 3 in
       return
         (Ast.stmt
            (Ast.Block
               [ Ast.stmt (Ast.Local (v, Ast.Int 0));
                 Ast.stmt
                   (Ast.While
                      ( Ast.Binary (Ast.Lt, Ast.Var v, Ast.Int bound),
                        body
                        @ [ Ast.stmt
                              (Ast.Assign
                                 (v, Ast.Binary (Ast.Add, Ast.Var v, Ast.Int 1)))
                          ] )) ]))) ]

(* Fork/join-heavy programs whose main thread touches the shared globals
   (and lock [m]) in an unsynchronized prelude before any worker exists:
   single-threaded so far, every variable looks race-free and the lock
   thread-local. The workers then race on the same state, delivering the
   facts late. Same boundedness invariants as [gen_concurrent_program]. *)
let gen_late_program =
  let open Gen in
  let* prelude_items =
    list_size (int_range 2 4)
      (oneof
         [ gen_simple [];
           (let* body = list_size (int_range 1 2) (gen_simple []) in
            return (Ast.stmt (Ast.Atomic body)));
           (let* body = list_size (int_range 1 2) (gen_simple []) in
            return
              (Ast.stmt (Ast.Sync ({ Ast.lock = "m"; index = None }, body)))) ])
  in
  let* n = int_range 2 5 in
  let* body =
    let rec go k acc =
      if k = 0 then return (List.rev acc)
      else
        let* item = gen_late_item [ "id" ] k in
        go (k - 1) (item :: acc)
    in
    go n []
  in
  let* workers = int_range 2 3 in
  let decls =
    [ Ast.Gvar ("g0", 0); Ast.Gvar ("g1", 1); Ast.Gvar ("g2", 2);
      Ast.Garray ("arr", 4); Ast.Garray ("tids", 4); Ast.Glock ("m", 1);
      Ast.Glock ("ls", 2) ]
  in
  let worker = { Ast.fname = "worker"; params = [ "id" ]; body; fline = 1 } in
  let spawn_join =
    prelude_items
    @ [ Ast.stmt (Ast.Local ("i", Ast.Int 0));
        Ast.stmt
          (Ast.While
             ( Ast.Binary (Ast.Lt, Ast.Var "i", Ast.Int workers),
               [ Ast.stmt
                   (Ast.Store
                      ("tids", Ast.Var "i", Ast.Spawn ("worker", [ Ast.Var "i" ])));
                 Ast.stmt
                   (Ast.Assign ("i", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int 1)))
               ] ));
        Ast.stmt (Ast.Assign ("i", Ast.Int 0));
        Ast.stmt
          (Ast.While
             ( Ast.Binary (Ast.Lt, Ast.Var "i", Ast.Int workers),
               [ Ast.stmt (Ast.Join_stmt (Ast.Index ("tids", Ast.Var "i")));
                 Ast.stmt
                   (Ast.Assign ("i", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int 1)))
               ] ));
        Ast.stmt (Ast.Print (Ast.Var "g0"))
      ]
  in
  let main = { Ast.fname = "main"; params = []; body = spawn_join; fline = 1 } in
  return { Ast.decls; funcs = [ worker; main ] }

let gen_concurrent_program =
  let open Gen in
  let* body = gen_worker_body in
  let* workers = int_range 2 3 in
  let decls =
    [ Ast.Gvar ("g0", 0); Ast.Gvar ("g1", 1); Ast.Gvar ("g2", 2);
      Ast.Garray ("arr", 4); Ast.Garray ("tids", 4); Ast.Glock ("m", 1);
      Ast.Glock ("ls", 2) ]
  in
  let worker = { Ast.fname = "worker"; params = [ "id" ]; body; fline = 1 } in
  let spawn_join =
    [ Ast.stmt (Ast.Local ("i", Ast.Int 0));
      Ast.stmt
        (Ast.While
           ( Ast.Binary (Ast.Lt, Ast.Var "i", Ast.Int workers),
             [ Ast.stmt
                 (Ast.Store ("tids", Ast.Var "i", Ast.Spawn ("worker", [ Ast.Var "i" ])));
               Ast.stmt (Ast.Assign ("i", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int 1)))
             ] ));
      Ast.stmt (Ast.Assign ("i", Ast.Int 0));
      Ast.stmt
        (Ast.While
           ( Ast.Binary (Ast.Lt, Ast.Var "i", Ast.Int workers),
             [ Ast.stmt (Ast.Join_stmt (Ast.Index ("tids", Ast.Var "i")));
               Ast.stmt (Ast.Assign ("i", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int 1)))
             ] ));
      Ast.stmt (Ast.Print (Ast.Var "g0"))
    ]
  in
  let main = { Ast.fname = "main"; params = []; body = spawn_join; fline = 1 } in
  return { Ast.decls; funcs = [ worker; main ] }
