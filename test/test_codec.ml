(* coop-trace/v1 binary codec: round trips, cross-format agreement,
   corruption handling, format auto-detection. *)

open Coop_trace
open Coop_lang
open Coop_runtime

let events_equal (a : Event.t) (b : Event.t) =
  a.Event.tid = b.Event.tid && a.Event.op = b.Event.op
  && Loc.equal a.Event.loc b.Event.loc

let traces_equal a b =
  Trace.length a = Trace.length b
  && List.for_all2 events_equal (Trace.to_list a) (Trace.to_list b)

(* --- varints ----------------------------------------------------------- *)

let test_varint_extremes () =
  let roundtrip n =
    let buf = Buffer.create 10 in
    Wire.add_svarint buf n;
    let s = Buffer.contents buf in
    Alcotest.(check int)
      (Printf.sprintf "svarint %d" n)
      n
      (Wire.read_svarint s ~pos:(ref 0) ~base:0)
  in
  List.iter roundtrip
    [ 0; 1; -1; 63; 64; -64; -65; 123_456_789; -987_654_321; max_int; min_int ];
  let buf = Buffer.create 10 in
  Wire.add_uvarint buf max_int;
  let s = Buffer.contents buf in
  Alcotest.(check int) "uvarint max_int" max_int
    (Wire.read_uvarint s ~pos:(ref 0) ~base:0);
  Alcotest.check_raises "negative uvarint rejected"
    (Invalid_argument "Wire.add_uvarint: negative") (fun () ->
      Wire.add_uvarint (Buffer.create 4) (-1))

let test_varint_truncation () =
  let bad s =
    match Wire.read_uvarint s ~pos:(ref 0) ~base:0 with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception Wire.Parse_error (_, _) -> ()
  in
  bad "";
  bad "\x80";
  bad "\xff\xff";
  (* 10 continuation bytes: over-long for a 63-bit int *)
  bad "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"

(* --- binary round trips ------------------------------------------------ *)

let all_ops_trace () =
  let loc1 = Loc.make ~func:1 ~pc:7 ~line:12 in
  let loc2 = Loc.make ~func:0 ~pc:(-1) ~line:0 in
  Trace.of_list
    [ Event.make ~tid:0 ~op:(Event.Read (Event.Global 3)) ~loc:loc1;
      Event.make ~tid:1 ~op:(Event.Write (Event.Cell (2, 14))) ~loc:loc1;
      Event.make ~tid:0 ~op:(Event.Read (Event.Global (-7))) ~loc:loc2;
      Event.make ~tid:0 ~op:(Event.Acquire 5) ~loc:loc2;
      Event.make ~tid:0 ~op:(Event.Release 5) ~loc:loc2;
      Event.make ~tid:0 ~op:(Event.Fork 3) ~loc:loc1;
      Event.make ~tid:3 ~op:Event.Yield ~loc:Loc.none;
      Event.make ~tid:0 ~op:(Event.Join 3) ~loc:loc1;
      Event.make ~tid:2 ~op:(Event.Enter 0) ~loc:loc1;
      Event.make ~tid:2 ~op:(Event.Exit 0) ~loc:loc1;
      Event.make ~tid:2 ~op:Event.Atomic_begin ~loc:loc2;
      Event.make ~tid:2 ~op:Event.Atomic_end ~loc:loc2;
      Event.make ~tid:2 ~op:(Event.Out (-42)) ~loc:loc1;
      Event.make ~tid:2 ~op:(Event.Out min_int) ~loc:loc1;
      Event.make ~tid:2 ~op:(Event.Out max_int) ~loc:loc1 ]

let test_roundtrip_concrete () =
  let t = all_ops_trace () in
  let t' = Codec.of_string (Codec.to_string t) in
  Alcotest.(check bool) "binary round trip" true (traces_equal t t')

let test_scratch_reuse () =
  (* The decode hot path hands every callback the same mutable record —
     the scratch-event contract consumers must copy under. *)
  let s = Codec.to_string (all_ops_trace ()) in
  let first = ref None in
  let distinct = ref 0 in
  Codec.iter_string s (fun e ->
      match !first with
      | None -> first := Some e
      | Some e0 -> if not (e == e0) then incr distinct);
  Alcotest.(check int) "one scratch event" 0 !distinct

let test_save_load () =
  let path = Filename.temp_file "coop" ".ctr" in
  let prog = Compile.source "var x = 0; fn main() { x = 1; print(x); }" in
  let _, trace = Runner.record ~sched:Sched.sequential prog in
  Codec.save path trace;
  let trace' = Codec.load path in
  let trace'' = Serialize.load path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (traces_equal trace trace');
  Alcotest.(check bool) "Serialize.load auto-detects binary" true
    (traces_equal trace trace'')

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"binary round trip on random traces" ~count:200
       ~print:Gen.print_trace Gen.gen_trace (fun trace ->
         traces_equal trace (Codec.of_string (Codec.to_string trace))))

(* text -> binary -> text -> binary is a fixpoint: both encoders are
   deterministic functions of the event sequence alone. *)
let prop_cross_format =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"text/binary conversion idempotent" ~count:100
       ~print:Gen.print_trace Gen.gen_trace (fun trace ->
         let b1 = Codec.to_string trace in
         let via_text = Serialize.of_string (Serialize.to_string trace) in
         let b2 = Codec.to_string (Codec.of_string (Codec.to_string via_text)) in
         String.equal b1 b2))

(* --- symbol tables ----------------------------------------------------- *)

let test_symtab_binary_roundtrip () =
  let t = all_ops_trace () in
  let syms = Symtab.create () in
  (* Names the text grammar cannot carry: spaces, '@', arbitrary bytes. *)
  Symtab.set syms Symtab.Func 0 "main loop";
  Symtab.set syms Symtab.Func 1 "worker@pool";
  Symtab.set syms Symtab.Lock 5 "queue\tlock\n#1";
  Symtab.set syms Symtab.Global 3 "counter";
  Symtab.set syms Symtab.Array 2 "grid[0]";
  let s = Codec.to_string ~syms t in
  let syms' = Symtab.create () in
  let t' = Codec.of_string ~syms:syms' s in
  Alcotest.(check bool) "events intact" true (traces_equal t t');
  Alcotest.(check bool) "names byte-exact" true (Symtab.equal syms syms')

let test_symtab_text_rejects () =
  let t = all_ops_trace () in
  let check_bad name =
    let syms = Symtab.create () in
    Symtab.set syms Symtab.Func 0 name;
    match Serialize.to_string ~syms t with
    | _ -> Alcotest.fail ("text encode should reject name: " ^ name)
    | exception Serialize.Encode_error msg ->
        Alcotest.(check bool)
          "error points at convert/binary" true
          (let has sub =
             let n = String.length sub in
             let rec go i =
               i + n <= String.length msg
               && (String.sub msg i n = sub || go (i + 1))
             in
             go 0
           in
           has "convert" && has "binary")
  in
  check_bad "main loop";
  check_bad "worker@pool";
  check_bad "tab\there";
  check_bad ""

let test_symtab_text_roundtrip () =
  let t = all_ops_trace () in
  let syms = Symtab.create () in
  Symtab.set syms Symtab.Func 0 "main";
  Symtab.set syms Symtab.Lock 5 "forks[0]";
  let s = Serialize.to_string ~syms t in
  let syms' = Symtab.create () in
  let t' = Serialize.of_string ~syms:syms' s in
  Alcotest.(check bool) "events intact" true (traces_equal t t');
  Alcotest.(check bool) "pragmas round trip" true (Symtab.equal syms syms')

(* --- corruption and truncation ----------------------------------------- *)

let expect_parse_error label s =
  match Codec.of_string s with
  | _ -> Alcotest.fail ("expected Parse_error: " ^ label)
  | exception Codec.Parse_error (msg, pos) ->
      Alcotest.(check bool)
        (label ^ ": position in message") true
        (pos >= 0
        && (let has sub =
              let n = String.length sub in
              let rec go i =
                i + n <= String.length msg
                && (String.sub msg i n = sub || go (i + 1))
              in
              go 0
            in
            has "byte"))

let test_corrupt_inputs () =
  let valid = Codec.to_string (all_ops_trace ()) in
  expect_parse_error "empty" "";
  expect_parse_error "bad magic" "not a binary trace\n";
  expect_parse_error "truncated magic" (String.sub Codec.magic 0 4);
  expect_parse_error "missing EOS"
    (String.sub valid 0 (String.length valid - 1));
  expect_parse_error "mid-chunk cut" (String.sub valid 0 24);
  expect_parse_error "header only" Codec.magic;
  expect_parse_error "unsupported version" (Codec.magic ^ "\x02\x00");
  (* chunk of one unknown tag 0xff *)
  expect_parse_error "unknown tag" (Codec.magic ^ "\x01\x01\xff\x00");
  (* yield event referencing thread id 0 with no def record *)
  expect_parse_error "undefined thread id"
    (Codec.magic ^ "\x01\x05\x16\x00\x00\x00\x00\x00");
  (* name record whose length overruns the chunk *)
  expect_parse_error "overrun name record"
    (Codec.magic ^ "\x01\x04\x05\x00\x00\x7f\x00")

let test_text_errors_carry_line () =
  match Serialize.of_string "0 yield @ 0 0 0\nbroken" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Serialize.Parse_error (msg, line) ->
      Alcotest.(check int) "line number" 2 line;
      Alcotest.(check bool) "message names the line" true
        (let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length msg
             && (String.sub msg i n = sub || go (i + 1))
           in
           go 0
         in
         has "(line 2)")

(* --- format auto-detection --------------------------------------------- *)

let test_autodetect_sources () =
  let t = all_ops_trace () in
  let txt = Filename.temp_file "coop" ".tr" in
  let bin = Filename.temp_file "coop" ".ctr" in
  Serialize.save txt t;
  Serialize.save ~format:Serialize.Binary bin t;
  Alcotest.(check bool) "text detected" true
    (Source.format_of_file txt = Serialize.Text);
  Alcotest.(check bool) "binary detected" true
    (Source.format_of_file bin = Serialize.Binary);
  let from_txt = Source.record (Source.of_file txt) in
  let from_bin = Source.record (Source.of_file bin) in
  Alcotest.(check bool) "same events either way" true
    (traces_equal from_txt from_bin);
  (* channel sources sniff too, and a file source replays *)
  let ic = open_in_bin bin in
  let from_chan = Source.record (Source.of_channel ic) in
  close_in ic;
  Alcotest.(check bool) "channel auto-detects" true
    (traces_equal from_bin from_chan);
  let src = Source.of_file bin in
  Alcotest.(check int) "file source replays" (Trace.length t)
    (Source.count src + Source.count src - Trace.length t);
  (* empty file: text with zero events *)
  let empty = Filename.temp_file "coop" ".tr" in
  Alcotest.(check int) "empty file" 0 (Source.count (Source.of_file empty));
  Sys.remove txt;
  Sys.remove bin;
  Sys.remove empty

(* --- cross-format, cross-shard verdict agreement ----------------------- *)

let violation_sig (v : Coop_core.Automaton.violation) =
  Format.asprintf "%d|%a|%a" v.Coop_core.Automaton.tid Loc.pp
    v.Coop_core.Automaton.loc Event.pp_op v.Coop_core.Automaton.op

let race_sig (r : Coop_race.Report.t) =
  Format.asprintf "%a|%d|%d|%a|%s" Event.pp_var r.Coop_race.Report.var
    r.Coop_race.Report.first_tid r.Coop_race.Report.second_tid Loc.pp
    r.Coop_race.Report.second_loc
    (match r.Coop_race.Report.witness with
    | Some w -> Coop_util.Json.to_string (Coop_provenance.Witness.to_json w)
    | None -> "-")

let pipeline_sig ~shards source =
  let r = Coop_pipeline.run ~shards ~witness:true source in
  String.concat "\n"
    ((Printf.sprintf "events %d" r.Coop_pipeline.events
     :: List.map race_sig r.Coop_pipeline.races)
    @ List.map violation_sig r.Coop_pipeline.violations)

let test_formats_and_shards_agree () =
  let prog = Compile.source (Coop_workloads.Micro.racy_counter ~threads:3 ~incs:4) in
  let _, trace = Runner.record ~sched:(Sched.random ~seed:5 ()) prog in
  let txt = Filename.temp_file "coop" ".tr" in
  let bin = Filename.temp_file "coop" ".ctr" in
  Serialize.save txt trace;
  Serialize.save ~format:Serialize.Binary bin trace;
  let reference = pipeline_sig ~shards:1 (Source.of_trace trace) in
  List.iter
    (fun shards ->
      List.iter
        (fun path ->
          Alcotest.(check string)
            (Printf.sprintf "verdict %s shards=%d" (Filename.extension path)
               shards)
            reference
            (pipeline_sig ~shards (Source.of_file path)))
        [ txt; bin ])
    [ 1; 2; 4 ];
  Sys.remove txt;
  Sys.remove bin

let suite =
  [
    Alcotest.test_case "varint extremes" `Quick test_varint_extremes;
    Alcotest.test_case "varint truncation" `Quick test_varint_truncation;
    Alcotest.test_case "concrete binary round trip" `Quick
      test_roundtrip_concrete;
    Alcotest.test_case "decoder reuses one scratch event" `Quick
      test_scratch_reuse;
    Alcotest.test_case "save/load + auto-detect" `Quick test_save_load;
    Alcotest.test_case "symtab binary round trip" `Quick
      test_symtab_binary_roundtrip;
    Alcotest.test_case "symtab text rejects unsafe names" `Quick
      test_symtab_text_rejects;
    Alcotest.test_case "symtab text pragma round trip" `Quick
      test_symtab_text_roundtrip;
    Alcotest.test_case "corrupt inputs raise with position" `Quick
      test_corrupt_inputs;
    Alcotest.test_case "text errors carry line numbers" `Quick
      test_text_errors_carry_line;
    Alcotest.test_case "source auto-detection" `Quick test_autodetect_sources;
    Alcotest.test_case "formats and shards agree" `Quick
      test_formats_and_shards_agree;
    prop_roundtrip;
    prop_cross_format;
  ]
