(* The witness differential suite: every verdict's evidence is real and
   identical in every execution mode.

   Three families of properties. (1) Replay: every race witness the
   detectors capture passes the happens-before self-check — the two
   positions hold the claimed accesses and the vector-clock oracle
   confirms them unordered ([Coop_race.Witness_check]); Eraser witnesses
   carry genuinely disjoint lock sets. (2) Identity: witnesses and
   commit causes are byte-identical across the sharded engine at
   K ∈ {1, 2, 4}, the single-pass engine and the two-pass oracle — the
   structural equalities below include the witness and cause fields, so
   a drift in any mode's seq numbering or commit tracking fails here.
   (3) Determinism: inferred-yield witnesses do not depend on the pool
   size fanning the schedule portfolio out. Plus units for the CLI's
   --witness mode parser and the default (witness-off) hot path. *)

let gen_trace = Gen.gen_trace
let gen_late_trace = Gen.gen_late_trace
let print_trace = Gen.print_trace

open QCheck2
open Coop_trace
open Coop_core
module Witness = Coop_provenance.Witness
module Witness_check = Coop_race.Witness_check

let prop gen name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:print_trace gen f)

(* --- Replay: witnesses survive the HB oracle -------------------------- *)

let races_replay trace =
  let r = Cooperability.check ~witness:true trace in
  match Witness_check.check_all trace r.Cooperability.races with
  | Ok n -> n = List.length r.Cooperability.races
  | Error e -> Test.fail_report e

let races_replay_on_traces =
  prop gen_trace "every race witness replays HB-unordered (random traces)" 40
    races_replay

let races_replay_on_late_traces =
  prop gen_late_trace
    "every race witness replays HB-unordered (late-knowledge traces)" 40
    races_replay

let lockset_witnesses_diverge trace =
  let p =
    Coop_pipeline.run ~lockset:true ~witness:true (Source.of_trace trace)
  in
  match p.Coop_pipeline.lockset_races with
  | None -> Test.fail_report "pipeline dropped the requested lockset pass"
  | Some reports -> (
      List.for_all
        (fun (r : Coop_race.Report.t) ->
          match r.Coop_race.Report.witness with
          | Some (Witness.Locks ls) ->
              (* The divergence that emptied the candidate set: nothing
                 held at the fatal access was a prior candidate. *)
              List.for_all
                (fun l -> not (List.mem l ls.Witness.l_held))
                ls.Witness.l_prior
          | _ -> false)
        reports
      &&
      match Witness_check.check_all trace reports with
      | Ok _ -> true
      | Error e -> Test.fail_report e)

let lockset_on_traces =
  prop gen_trace
    "every Eraser witness carries disjoint lock sets (random traces)" 30
    lockset_witnesses_diverge

(* --- Identity: the same evidence in every mode ------------------------ *)

let coop_result_equal (a : Cooperability.result) (b : Cooperability.result) =
  a.Cooperability.violations = b.Cooperability.violations
  && a.Cooperability.races = b.Cooperability.races
  && Event.Var_set.equal a.Cooperability.racy b.Cooperability.racy
  && a.Cooperability.events = b.Cooperability.events

(* Report.t and Automaton.violation embed the witness and cause, so the
   structural comparisons above pin them too; the explicit [~shards:1]
   keeps the oracle meaningful under a COOP_SHARDS override. *)
let witnesses_identical trace =
  let run k =
    Cooperability.check_source ~shards:k ~witness:true
      (Source.of_trace trace)
  in
  let reference = run 1 in
  List.for_all (fun k -> coop_result_equal reference (run k)) [ 2; 4 ]
  && coop_result_equal reference
       (Cooperability.check_source ~two_pass:true ~witness:true
          (Source.of_trace trace))

let identity_on_traces =
  prop gen_trace
    "witnesses: sharded(1/2/4) = single-pass = two-pass (random traces)" 30
    witnesses_identical

let identity_on_late_traces =
  prop gen_late_trace
    "witnesses: sharded(1/2/4) = single-pass = two-pass (late-knowledge \
     traces)"
    30 witnesses_identical

(* Post implies a commit happened, so every violation must name its
   commit cause — in every mode (the identity props above then pin the
   causes equal). *)
let violations_carry_causes trace =
  let r = Cooperability.check trace in
  List.for_all
    (fun (v : Automaton.violation) -> v.Automaton.cause <> None)
    r.Cooperability.violations

let causes_on_late_traces =
  prop gen_late_trace "every violation names its commit cause" 30
    violations_carry_causes

let atomizer_causes_identical trace =
  let reference = Coop_atomicity.Atomizer.check ~shards:1 trace in
  Coop_atomicity.Atomizer.check_two_pass trace = reference
  && List.for_all
       (fun k -> Coop_atomicity.Atomizer.check ~shards:k trace = reference)
       [ 2; 4 ]
  && List.for_all
       (fun (w : Coop_atomicity.Atomizer.warning) ->
         w.Coop_atomicity.Atomizer.cause <> None)
       reference.Coop_atomicity.Atomizer.warnings

let atomizer_on_late_traces =
  prop gen_late_trace
    "atomizer causes: sharded(1/2/4) = single-pass = two-pass, always \
     present"
    20 atomizer_causes_identical

(* --- A race with known evidence --------------------------------------- *)

(* Fork, then both threads write the same global with no synchronization:
   the parent's post-fork write cannot be seen by the child, so the two
   writes are concurrent and the witness is fully predictable — event
   positions 2 and 3 (1-based), clocks proving the pair unordered. *)
let test_known_witness () =
  let trace = Trace.create () in
  let add tid op pc =
    Trace.add trace
      (Event.make ~tid ~op ~loc:(Loc.make ~func:0 ~pc ~line:1))
  in
  add 0 (Event.Fork 1) 0;
  add 0 (Event.Write (Event.Global 0)) 1;
  add 1 (Event.Write (Event.Global 0)) 2;
  let r = Cooperability.check ~witness:true trace in
  match r.Cooperability.races with
  | [ race ] -> (
      (match race.Coop_race.Report.witness with
      | Some (Witness.Race w) ->
          Alcotest.(check int) "first tid" 0 w.Witness.r_first.Witness.a_tid;
          Alcotest.(check int) "first seq" 2 w.Witness.r_first.Witness.a_seq;
          Alcotest.(check int) "second tid" 1 w.Witness.r_second.Witness.a_tid;
          Alcotest.(check int) "second seq" 3 w.Witness.r_second.Witness.a_seq;
          Alcotest.(check bool) "clocks prove the pair unordered" true
            (w.Witness.r_first_clock > w.Witness.r_second_sees)
      | _ -> Alcotest.fail "expected a race witness");
      match Witness_check.check_all trace r.Cooperability.races with
      | Ok n -> Alcotest.(check int) "oracle verifies it" 1 n
      | Error e -> Alcotest.fail e)
  | rs ->
      Alcotest.fail (Printf.sprintf "expected 1 race, got %d" (List.length rs))

(* --- Determinism: infer witnesses vs pool size ------------------------ *)

let test_infer_witness_determinism () =
  let prog =
    match Coop_workloads.Registry.find "bank" with
    | Some e -> Coop_workloads.Registry.program_of ~threads:2 ~size:4 e
    | None -> Alcotest.fail "bank workload missing"
  in
  let run jobs =
    let pool = Coop_util.Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Coop_util.Pool.shutdown pool)
      (fun () -> Infer.infer ~pool prog)
  in
  let reference = run 1 in
  Alcotest.(check bool)
    "one witness per inferred yield" true
    (List.length reference.Infer.witnesses
    = Loc.Set.cardinal reference.Infer.yields);
  List.iter
    (fun (yw : Infer.yield_witness) ->
      Alcotest.(check bool) "witness names its yield location" true
        (Loc.equal yw.Infer.yw_loc yw.Infer.yw_viol.Automaton.loc);
      Alcotest.(check bool) "round is 1-based" true (yw.Infer.yw_round >= 1))
    reference.Infer.witnesses;
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "witness chain identical at %d domain(s)" jobs)
        true
        (r.Infer.witnesses = reference.Infer.witnesses))
    [ 2; 4 ]

(* --- CLI mode parser --------------------------------------------------- *)

let test_parse_mode () =
  let check name expect s =
    Alcotest.(check bool) name true (Witness.parse_mode s = expect)
  in
  check "text" (Some Witness.Text) "text";
  check "json" (Some (Witness.Json None)) "json";
  check "json:FILE" (Some (Witness.Json (Some "w.json"))) "json:w.json";
  check "json: (empty file) rejected" None "json:";
  check "garbage rejected" None "bogus";
  check "empty rejected" None "";
  check "TEXT (case-sensitive) rejected" None "TEXT"

(* --- The default hot path carries nothing ------------------------------ *)

let witness_off_is_none trace =
  let r = Cooperability.check trace in
  List.for_all
    (fun (race : Coop_race.Report.t) -> race.Coop_race.Report.witness = None)
    r.Cooperability.races

let off_on_traces =
  prop gen_trace "witness off (the default): reports carry None" 20
    witness_off_is_none

let suite =
  [
    races_replay_on_traces;
    races_replay_on_late_traces;
    lockset_on_traces;
    identity_on_traces;
    identity_on_late_traces;
    causes_on_late_traces;
    atomizer_on_late_traces;
    Alcotest.test_case "a fork/write/write race has the expected witness"
      `Quick test_known_witness;
    Alcotest.test_case "infer: yield witnesses identical at 1/2/4 domains"
      `Quick test_infer_witness_determinism;
    Alcotest.test_case "Witness.parse_mode: text/json/json:FILE" `Quick
      test_parse_mode;
    off_on_traces;
  ]
