(* Unit and property tests for the zero-dependency Coop_util.Json codec:
   print/parse round trips on random documents, float edge cases, string
   escaping (control characters, \uXXXX incl. surrogate pairs), and
   deeply nested arrays. *)

open Coop_util

(* Structural equality with bit-exact floats: [-0.] and [0.] compare
   equal under [compare], but the codec distinguishes them and the round
   trip must preserve that. *)
let rec equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y ->
      Int64.bits_of_float x = Int64.bits_of_float y
  | Json.String x, Json.String y -> String.equal x y
  | Json.List x, Json.List y ->
      List.length x = List.length y && List.for_all2 equal x y
  | Json.Obj x, Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k, v) (k', v') -> String.equal k k' && equal v v')
           x y
  | _ -> false

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> equal v v'
  | Error _ -> false

let check_roundtrip what v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) what true (equal v v')
  | Error e -> Alcotest.fail (what ^ ": " ^ e)

let test_float_edge_cases () =
  List.iter
    (fun f -> check_roundtrip (Printf.sprintf "float %h" f) (Json.Float f))
    [ 0.; -0.; 1.; -1.5; 3.141592653589793; 1e-300; 1.5e20; -2.5e-12;
      Float.min_float; Float.max_float; 4.9406564584124654e-324 (* subnormal *);
      0.1; 1. /. 3.; -123456.789 ];
  (* Non-finite floats have no JSON representation: they print as null
     and deliberately do not round trip. *)
  Alcotest.(check bool) "nan prints as null" true
    (match Json.of_string (Json.to_string (Json.Float Float.nan)) with
    | Ok Json.Null -> true
    | _ -> false)

let test_int_edge_cases () =
  List.iter
    (fun i -> check_roundtrip (string_of_int i) (Json.Int i))
    [ 0; 1; -1; max_int; min_int; 1_000_000_007 ]

let test_string_escapes () =
  List.iter
    (fun s -> check_roundtrip (String.escaped s) (Json.String s))
    [ ""; "plain"; "with \"quotes\" and \\backslash\\";
      "newline\ntab\treturn\r"; "\b\012 backspace and formfeed";
      "\x01\x02\x1f low control chars"; "\x7f\x80\xff high bytes";
      String.init 32 Char.chr ]

let test_unicode_escapes () =
  let parses input expect =
    match Json.of_string input with
    | Ok (Json.String s) -> Alcotest.(check string) input expect s
    | Ok _ -> Alcotest.fail (input ^ ": not a string")
    | Error e -> Alcotest.fail (input ^ ": " ^ e)
  in
  parses {|"\u0041"|} "A";
  parses {|"\u00e9"|} "\xc3\xa9" (* e-acute, 2-byte UTF-8 *);
  parses {|"\u2028"|} "\xe2\x80\xa8" (* line separator, 3-byte *);
  parses {|"\uFFFD"|} "\xef\xbf\xbd" (* uppercase hex accepted *);
  parses {|"\ud83d\ude00"|} "\xf0\x9f\x98\x80" (* surrogate pair: emoji *);
  parses {|"\u0000"|} "\x00";
  let rejects input =
    match Json.of_string input with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected parse error for " ^ input)
  in
  rejects {|"\uzzzz"|};
  rejects {|"\u12"|} (* truncated *);
  rejects {|"\ud800"|} (* lone high surrogate *);
  rejects {|"\udc00"|} (* lone low surrogate *);
  rejects {|"\ud83dA"|} (* high surrogate + non-surrogate *)

let test_control_chars_escaped_on_output () =
  (* The printer must emit \u00XX for control characters, never the raw
     byte (RFC 8259 requires it). *)
  let s = Json.to_string (Json.String "\x01") in
  Alcotest.(check bool) "raw control byte absent" true
    (not (String.contains s '\x01'));
  Alcotest.(check bool) "escape present" true
    (let re = "\\u0001" in
     let rec find i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_deeply_nested_arrays () =
  let depth = 1000 in
  let rec build n = if n = 0 then Json.Int 7 else Json.List [ build (n - 1) ] in
  check_roundtrip "1000-deep nested array" (build depth);
  let rec count = function
    | Json.List [ v ] -> 1 + count v
    | Json.Int 7 -> 0
    | _ -> Alcotest.fail "wrong shape after round trip"
  in
  match Json.of_string (Json.to_string (build depth)) with
  | Ok v -> Alcotest.(check int) "depth preserved" depth (count v)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Random-document round-trip property                                 *)
(* ------------------------------------------------------------------ *)

let gen_finite_float =
  QCheck2.Gen.map
    (fun f -> if Float.is_finite f then f else 0.)
    QCheck2.Gen.float

(* Any byte sequence: printable, control and non-ASCII bytes all round
   trip (control chars via \u00XX, high bytes as raw UTF-8-agnostic
   bytes). *)
let gen_raw_string =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12))

let gen_json =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [ return Json.Null;
                 map (fun b -> Json.Bool b) bool;
                 map (fun i -> Json.Int i) int;
                 map (fun f -> Json.Float f) gen_finite_float;
                 map (fun s -> Json.String s) gen_raw_string ]
           in
           if n = 0 then leaf
           else
             oneof
               [ leaf;
                 map (fun l -> Json.List l)
                   (list_size (int_bound 4) (self (n / 2)));
                 map (fun l -> Json.Obj l)
                   (list_size (int_bound 4)
                      (pair gen_raw_string (self (n / 2)))) ]))

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"print/parse round trip on random documents"
       ~count:500
       ~print:(fun v -> Json.to_string v)
       gen_json roundtrip)

let suite =
  [
    Alcotest.test_case "float edge cases" `Quick test_float_edge_cases;
    Alcotest.test_case "int edge cases" `Quick test_int_edge_cases;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "unicode \\u escapes" `Quick test_unicode_escapes;
    Alcotest.test_case "control chars escaped on output" `Quick
      test_control_chars_escaped_on_output;
    Alcotest.test_case "deeply nested arrays" `Quick test_deeply_nested_arrays;
    prop_roundtrip;
  ]
