(* Determinism of the domain-parallel analyses: for every pool size the
   parallel paths must produce the same answers as the sequential ones —
   identical inferred yield sets for Infer, identical behaviour sets (and
   completeness, and deadlock counts for Explore) for the two explorers.
   Checked on hand-written micro programs and on qcheck-generated
   concurrent programs. *)

(* Bind before [open QCheck2] shadows the module name (same dance as
   test_fuzz.ml). *)
let gen_program = Gen.gen_concurrent_program

open QCheck2
open Coop_util
open Coop_trace
open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

(* Module-level pools, shared across test cases; alcotest runs cases
   sequentially so there is no cross-test interference. Size 4 appears
   twice so every determinism check also compares two runs at the same
   size — work stealing makes the task interleaving different every run,
   and the answers must not be. *)
let pool2 = Pool.create ~jobs:2 ()
let pool4 = Pool.create ~jobs:4 ()
let pools =
  [ (1, Pool.create ~jobs:1 ()); (2, pool2); (4, pool4); (4, pool4) ]

let micro_programs =
  [ ("racy_counter 2x2", Micro.racy_counter ~threads:2 ~incs:2);
    ("check_then_act 2", Micro.check_then_act ~threads:2);
    ("check_then_act 3", Micro.check_then_act ~threads:3);
    ("single_transaction 3", Micro.single_transaction ~threads:3);
    ("producer_consumer 2", Micro.producer_consumer ~items:2) ]
  |> List.map (fun (name, src) -> (name, Compile.source src))

let loc_set = Alcotest.testable (Fmt.of_to_string (fun s ->
    String.concat ","
      (List.map (Format.asprintf "%a" Loc.pp) (Loc.Set.elements s))))
    Loc.Set.equal

(* --- Infer: bit-identical across pool sizes ------------------------- *)

let test_infer_deterministic () =
  List.iter
    (fun (name, prog) ->
      (* Spin-wait micros produce very long runs under unfair random
         schedules; the step cap keeps the portfolio cheap and determinism
         holds regardless (truncation is itself deterministic). *)
      let reference =
        Infer.infer ~pool:(List.assoc 1 pools) ~max_steps:300_000 prog
      in
      List.iter
        (fun (jobs, pool) ->
          let r = Infer.infer ~pool ~max_steps:300_000 prog in
          Alcotest.check loc_set
            (Printf.sprintf "%s: yields identical at jobs=%d" name jobs)
            reference.Infer.yields r.Infer.yields;
          Alcotest.(check int)
            (Printf.sprintf "%s: rounds identical at jobs=%d" name jobs)
            reference.Infer.rounds r.Infer.rounds;
          Alcotest.(check int)
            (Printf.sprintf "%s: initial violations identical at jobs=%d" name
               jobs)
            reference.Infer.initial_violations r.Infer.initial_violations;
          Alcotest.(check int)
            (Printf.sprintf "%s: clean final check at jobs=%d" name jobs)
            0 r.Infer.final_check_violations)
        pools)
    micro_programs

(* --- Explore: same behaviours / completeness / deadlocks ------------ *)

let explore_agrees name prog =
  List.iter
    (fun mode ->
      let seq = Explore.run mode prog in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sequential exploration complete" name)
        true seq.Explore.complete;
      List.iter
        (fun (jobs, pool) ->
          let par = Explore.run ~pool mode prog in
          Alcotest.(check bool)
            (Printf.sprintf "%s: complete at jobs=%d" name jobs)
            true par.Explore.complete;
          Alcotest.(check bool)
            (Printf.sprintf "%s: behaviours equal at jobs=%d" name jobs)
            true
            (Behavior.Set.equal seq.Explore.behaviors par.Explore.behaviors);
          Alcotest.(check int)
            (Printf.sprintf "%s: deadlocks equal at jobs=%d" name jobs)
            seq.Explore.deadlocks par.Explore.deadlocks)
        pools)
    [ Explore.Preemptive; Explore.Cooperative ]

let test_explore_deterministic () =
  List.iter (fun (name, prog) -> explore_agrees name prog) micro_programs

(* A deadlocking program: parallel shards must not double-count the
   deadlocked terminal states they share. *)
let test_explore_deadlock_dedup () =
  let prog = Compile.source (Micro.deadlock_prone ()) in
  explore_agrees "deadlock_prone" prog

(* --- DPOR: same behaviours ------------------------------------------ *)

(* DPOR is stateless: it only terminates on programs all of whose
   executions terminate, so spin-wait micros (producer_consumer) are out,
   and check_then_act stays at 2 threads to keep the execution count
   small. *)
let dpor_programs =
  [ ("racy_counter 2x2", Micro.racy_counter ~threads:2 ~incs:2);
    ("check_then_act 2", Micro.check_then_act ~threads:2);
    ("single_transaction 2", Micro.single_transaction ~threads:2);
    ("single_transaction 3", Micro.single_transaction ~threads:3) ]
  |> List.map (fun (name, src) -> (name, Compile.source src))

let test_dpor_deterministic () =
  List.iter
    (fun (name, prog) ->
      let seq = Dpor.run prog in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sequential dpor complete" name)
        true seq.Dpor.complete;
      List.iter
        (fun (jobs, pool) ->
          let par = Dpor.run ~pool prog in
          Alcotest.(check bool)
            (Printf.sprintf "%s: dpor complete at jobs=%d" name jobs)
            true par.Dpor.complete;
          Alcotest.(check bool)
            (Printf.sprintf "%s: dpor behaviours equal at jobs=%d" name jobs)
            true (Behavior.Set.equal seq.Dpor.behaviors par.Dpor.behaviors))
        pools)
    dpor_programs

(* --- Equivalence: the verdict is pool-independent -------------------- *)

let test_equivalence_deterministic () =
  List.iter
    (fun (name, prog) ->
      let inf =
        Infer.infer ~pool:(List.assoc 1 pools) ~max_steps:300_000 prog
      in
      let seq = Equivalence.compare ~yields:inf.Infer.yields prog in
      List.iter
        (fun (jobs, pool) ->
          let par = Equivalence.compare ~pool ~yields:inf.Infer.yields prog in
          Alcotest.(check bool)
            (Printf.sprintf "%s: equal verdict stable at jobs=%d" name jobs)
            seq.Equivalence.equal par.Equivalence.equal;
          Alcotest.(check bool)
            (Printf.sprintf "%s: subset verdict stable at jobs=%d" name jobs)
            seq.Equivalence.preemptive_subset par.Equivalence.preemptive_subset)
        pools)
    micro_programs

(* --- The same properties on random programs -------------------------- *)

let prop name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:Pretty.program gen_program f)

let infer_parallel_matches =
  prop "qcheck: parallel inference = sequential inference" 20 (fun p ->
      let prog = Compile.program p in
      let reference =
        Infer.infer ~pool:(List.assoc 1 pools) ~max_steps:300_000 prog
      in
      List.for_all
        (fun (_, pool) ->
          let r = Infer.infer ~pool ~max_steps:300_000 prog in
          Loc.Set.equal reference.Infer.yields r.Infer.yields
          && reference.Infer.rounds = r.Infer.rounds)
        pools)

let explore_parallel_matches =
  prop "qcheck: parallel exploration = sequential exploration" 8 (fun p ->
      let prog = Compile.program p in
      (* Generated programs always terminate, but cap the space anyway and
         only compare when the sequential pass is complete (budget
         exhaustion makes the behaviour set schedule-dependent). *)
      let seq = Explore.run ~max_states:40_000 Explore.Preemptive prog in
      (not seq.Explore.complete)
      || List.for_all
           (fun (_, pool) ->
             let par =
               Explore.run ~pool ~max_states:40_000 Explore.Preemptive prog
             in
             par.Explore.complete
             && Behavior.Set.equal seq.Explore.behaviors par.Explore.behaviors
             && seq.Explore.deadlocks = par.Explore.deadlocks)
           pools)

let dpor_parallel_matches =
  prop "qcheck: parallel dpor = sequential dpor" 8 (fun p ->
      let prog = Compile.program p in
      let seq = Dpor.run ~max_executions:40_000 prog in
      (not seq.Dpor.complete)
      || List.for_all
           (fun (_, pool) ->
             let par = Dpor.run ~pool ~max_executions:40_000 prog in
             par.Dpor.complete
             && Behavior.Set.equal seq.Dpor.behaviors par.Dpor.behaviors)
           pools)

let suite =
  [
    Alcotest.test_case "infer deterministic across pool sizes" `Quick
      test_infer_deterministic;
    Alcotest.test_case "explore deterministic across pool sizes" `Quick
      test_explore_deterministic;
    Alcotest.test_case "explore dedupes deadlocks across shards" `Quick
      test_explore_deadlock_dedup;
    Alcotest.test_case "dpor deterministic across pool sizes" `Quick
      test_dpor_deterministic;
    Alcotest.test_case "equivalence verdict pool-independent" `Quick
      test_equivalence_deterministic;
    infer_parallel_matches;
    explore_parallel_matches;
    dpor_parallel_matches;
  ]
