(* Equivalence of the fused streaming pipeline with the offline checkers.

   The acceptance property of the online-analysis refactor: one two-phase
   pass over a replayable event source — never materializing a trace —
   reports exactly what every offline [check : Trace.t -> result] entry
   point reports. Exercised on random feasible traces, random well-formed
   concurrent programs (re-executed deterministically as the source), all
   fourteen evaluation workloads, and traces streamed back off disk. *)

(* Bind the shared harness before [open QCheck2] shadows the module name. *)
let gen_trace = Gen.gen_trace
let print_trace = Gen.print_trace
let gen_program = Gen.gen_concurrent_program

open QCheck2
open Coop_trace
open Coop_runtime
open Coop_core
open Coop_workloads

(* The full pipeline (every optional baseline on) against the per-checker
   offline entry points on the recorded equivalent of the same stream. *)
let agrees_with_offline trace (p : Coop_pipeline.result) =
  let coop = Cooperability.check trace in
  p.Coop_pipeline.races = Coop_race.Fasttrack.run trace
  && Event.Var_set.equal p.Coop_pipeline.racy coop.Cooperability.racy
  && p.Coop_pipeline.lockset_races = Some (Coop_race.Lockset.run trace)
  && p.Coop_pipeline.violations = coop.Cooperability.violations
  && p.Coop_pipeline.deadlock = Deadlock.analyze trace
  && p.Coop_pipeline.atomizer = Some (Coop_atomicity.Atomizer.check trace)
  && p.Coop_pipeline.conflict = Some (Coop_atomicity.Conflict.check trace)
  && p.Coop_pipeline.events = Trace.length trace

let full_run source =
  Coop_pipeline.run ~lockset:true ~atomize:true ~conflict:true source

let prop_trace name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:print_trace gen_trace f)

let prop_program name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:Coop_lang.Pretty.program gen_program f)

let pipeline_matches_offline_on_traces =
  prop_trace "fused pipeline = offline checkers on random feasible traces" 60
    (fun trace -> agrees_with_offline trace (full_run (Source.of_trace trace)))

let check_source_matches_check =
  prop_trace "Cooperability.check_source = Cooperability.check" 60
    (fun trace ->
      Cooperability.check_source (Source.of_trace trace)
      = Cooperability.check trace)

(* The source is a deterministic re-execution of the program — the pipeline
   never sees a [Trace.t]; the offline side records the identical run. *)
let pipeline_matches_offline_on_programs =
  prop_program "fused pipeline over re-execution = offline on recorded run" 30
    (fun p ->
      let prog = Coop_lang.Compile.program p in
      let sched () = Sched.random ~seed:13 () in
      let _, trace =
        Runner.record ~max_steps:300_000 ~sched:(sched ()) prog
      in
      let source = Runner.source ~max_steps:300_000 ~sched prog in
      agrees_with_offline trace (full_run source))

(* The acceptance criterion: all fourteen evaluation workloads, streamed
   straight from the VM, match the offline checkers field by field. *)
let test_workloads_match () =
  List.iter
    (fun (e : Registry.entry) ->
      let threads = min 3 e.Registry.default_threads in
      let size = max 1 (e.Registry.default_size / 2) in
      let prog = Registry.program_of ~threads ~size e in
      let sched () = Sched.random ~seed:7 () in
      let _, trace =
        Runner.record ~max_steps:3_000_000 ~sched:(sched ()) prog
      in
      let p = full_run (Runner.source ~max_steps:3_000_000 ~sched prog) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: pipeline = offline" e.Registry.name)
        true
        (agrees_with_offline trace p))
    Registry.all

(* Streaming a serialized trace back off disk is just another source. *)
let test_file_source_matches () =
  let e = Option.get (Registry.find "philo") in
  let prog = Registry.program_of ~threads:3 ~size:2 e in
  let _, trace =
    Runner.record ~max_steps:3_000_000 ~sched:(Sched.random ~seed:3 ()) prog
  in
  let path = Filename.temp_file "coop_pipeline" ".tr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.with_file_sink path (fun sink -> Trace.iter sink trace);
      let p = full_run (Source.of_file path) in
      Alcotest.(check bool) "file-streamed pipeline = offline" true
        (agrees_with_offline trace p);
      Alcotest.(check int) "stream length survives the round trip"
        (Trace.length trace)
        (Source.count (Source.of_file path)))

let suite =
  [
    pipeline_matches_offline_on_traces;
    check_source_matches_check;
    pipeline_matches_offline_on_programs;
    Alcotest.test_case "all workloads: pipeline = offline" `Slow
      test_workloads_match;
    Alcotest.test_case "file source matches" `Quick test_file_source_matches;
  ]
