(* Replay-elision equivalence suites. Three families of laws:

   - cached DPOR (checkpoint store, with and without sleep sets, at pool
     sizes 1/2/4) is observationally identical to the stateless oracle —
     same behaviour sets, executions and novel steps; only the prefix
     re-derivation work ([replayed_steps]) differs;
   - every snapshottable analysis obeys the snapshot/resume law: an
     instance resumed from a mid-stream snapshot finalizes exactly like
     one that streamed the full trace (including witnesses), and one
     snapshot serves many independent resumes (the deep-copy contract);
   - inference is cache-oblivious: yield sets, rounds, violation counts
     and witness chains are identical with replay elision on and off. *)

(* Bind before [open QCheck2] shadows the module name (same dance as
   test_parallel.ml). *)
let gen_program = Gen.gen_concurrent_program

open QCheck2
open Coop_util
open Coop_trace
open Coop_race
open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let pool2 = Pool.create ~jobs:2 ()
let pool4 = Pool.create ~jobs:4 ()
let pools = [ (1, Pool.create ~jobs:1 ()); (2, pool2); (4, pool4) ]

(* Terminating micro programs only: DPOR diverges on spin loops. *)
let micro_programs =
  [ ("racy_counter 2x2", Micro.racy_counter ~threads:2 ~incs:2);
    ("racy_counter 3x1", Micro.racy_counter ~threads:3 ~incs:1);
    ("check_then_act 2", Micro.check_then_act ~threads:2);
    ("single_transaction 3", Micro.single_transaction ~threads:3) ]
  |> List.map (fun (name, src) -> (name, Compile.source src))

(* --- the bugfix satellite: steps = novel + replayed ------------------ *)

let test_dpor_counter_split () =
  List.iter
    (fun (name, prog) ->
      let c = Dpor.run prog in
      let s = Dpor.run ~no_cache:true prog in
      Alcotest.(check int)
        (name ^ ": cached steps = novel + replayed")
        (c.Dpor.novel_steps + c.Dpor.replayed_steps)
        c.Dpor.steps;
      Alcotest.(check int)
        (name ^ ": stateless steps = novel + replayed")
        (s.Dpor.novel_steps + s.Dpor.replayed_steps)
        s.Dpor.steps;
      Alcotest.(check int)
        (name ^ ": novel steps cache-independent")
        s.Dpor.novel_steps c.Dpor.novel_steps;
      Alcotest.(check int)
        (name ^ ": executions cache-independent")
        s.Dpor.executions c.Dpor.executions;
      (* The point of the store: strictly less re-derivation work on any
         program with more than one execution. *)
      Alcotest.(check bool)
        (name ^ ": elision reduces replayed steps")
        true
        (c.Dpor.replayed_steps < s.Dpor.replayed_steps);
      Alcotest.(check bool)
        (name ^ ": checkpoints actually hit")
        true (c.Dpor.cache_hits > 0);
      Alcotest.(check int)
        (name ^ ": stateless path never hits")
        0 s.Dpor.cache_hits)
    micro_programs

(* --- snapshot/resume law --------------------------------------------- *)

let law_traces =
  [ ("racy_counter 2x2", Micro.racy_counter ~threads:2 ~incs:2);
    ("check_then_act 2", Micro.check_then_act ~threads:2);
    ("single_transaction 2", Micro.single_transaction ~threads:2);
    ("monitor_cell 2", Micro.monitor_cell ~items:2) ]
  |> List.map (fun (name, src) ->
         let prog = Compile.source src in
         let _, tr =
           Runner.record ~max_steps:200_000
             ~sched:(Sched.random ~seed:11 ())
             prog
         in
         (name, prog, tr))

let feed a tr lo hi =
  for i = lo to hi - 1 do
    Analysis.step a (Trace.get tr i)
  done

(* [check_law name make show tr]: for several split points, a fresh
   instance resumed from a snapshot of the prefix and streamed the tail
   must finalize exactly like the full-stream run. The same snapshot is
   loaded into two instances streamed one after the other — if [load]
   shared mutable state between them (or with the packet), the second
   would see the first's tail and diverge. The donor instance must also
   be undisturbed by [save]. *)
let check_law name make show tr =
  let n = Trace.length tr in
  let full =
    let a = make () in
    feed a tr 0 n;
    show (Analysis.finalize a)
  in
  List.iter
    (fun frac ->
      let k = n * frac / 4 in
      let ctx = Printf.sprintf "%s @%d/%d" name k n in
      let donor = make () in
      feed donor tr 0 k;
      match Analysis.snapshot donor with
      | None -> Alcotest.fail (ctx ^ ": analysis not snapshottable")
      | Some snap ->
          let a1 = make () in
          let a2 = make () in
          Analysis.resume a1 snap;
          Analysis.resume a2 snap;
          feed a1 tr k n;
          Alcotest.(check string)
            (ctx ^ ": resumed = full stream")
            full
            (show (Analysis.finalize a1));
          feed a2 tr k n;
          Alcotest.(check string)
            (ctx ^ ": second resume from the same snapshot = full stream")
            full
            (show (Analysis.finalize a2));
          feed donor tr k n;
          Alcotest.(check string)
            (ctx ^ ": donor undisturbed by save")
            full
            (show (Analysis.finalize donor)))
    [ 0; 1; 2; 3; 4 ]

let show_reports rs =
  String.concat "\n" (List.map (Format.asprintf "%a" Report.pp) rs)

let show_coop (r : Cooperability.result) =
  Format.asprintf "%s|%s|%s|%d"
    (String.concat ";"
       (List.map
          (Format.asprintf "%a" Automaton.pp_violation)
          r.Cooperability.violations))
    (show_reports r.Cooperability.races)
    (String.concat ","
       (List.map
          (Format.asprintf "%a" Event.pp_var)
          (Event.Var_set.elements r.Cooperability.racy)))
    r.Cooperability.events

let test_snapshot_resume_law () =
  List.iter
    (fun (name, prog, tr) ->
      check_law
        (name ^ "/fasttrack+witness")
        (fun () -> Fasttrack.analysis ~witness:true ())
        show_reports tr;
      check_law
        (name ^ "/lockset+witness")
        (fun () -> Lockset.analysis ~witness:true ())
        show_reports tr;
      check_law
        (name ^ "/online chain+witness")
        (fun () -> Cooperability.online_analysis ~witness:true ())
        show_coop tr;
      check_law (name ^ "/metrics")
        (fun () -> Metrics.analysis prog ~inferred:Loc.Set.empty ())
        (Format.asprintf "%a" Metrics.pp)
        tr)
    law_traces

(* --- qcheck equivalence suites --------------------------------------- *)

let prop name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:Pretty.program gen_program f)

(* Cached and stateless DPOR explore the same tree in the same order, so
   even budget-truncated runs must agree on everything but
   [replayed_steps]/[cache_hits]; behaviour sets across the sleep-set
   toggle additionally agree when both runs are complete, and pruning
   never explores more. The budget is deliberately small: the stateless
   oracle replays every prefix from the root, so its cost grows
   quadratically with depth. *)
let dpor_budget = 4_000

let dpor_cached_matches_stateless =
  prop "qcheck: cached dpor = stateless dpor (+/- sleep sets)" 6 (fun p ->
      let prog = Compile.program p in
      let runs =
        List.map
          (fun sleep_sets ->
            ( Dpor.run ~sleep_sets ~max_executions:dpor_budget prog,
              Dpor.run ~sleep_sets ~no_cache:true ~max_executions:dpor_budget
                prog ))
          [ true; false ]
      in
      let pairwise_ok =
        List.for_all
          (fun ((c : Dpor.result), (s : Dpor.result)) ->
            c.Dpor.complete = s.Dpor.complete
            && c.Dpor.executions = s.Dpor.executions
            && c.Dpor.novel_steps = s.Dpor.novel_steps
            && c.Dpor.steps = c.Dpor.novel_steps + c.Dpor.replayed_steps
            && s.Dpor.steps = s.Dpor.novel_steps + s.Dpor.replayed_steps
            && Behavior.Set.equal c.Dpor.behaviors s.Dpor.behaviors)
          runs
      in
      match runs with
      | [ (sleep, _); (plain, _) ] ->
          pairwise_ok
          && (not (sleep.Dpor.complete && plain.Dpor.complete)
             || Behavior.Set.equal sleep.Dpor.behaviors plain.Dpor.behaviors
                && sleep.Dpor.executions <= plain.Dpor.executions)
      | _ -> false)

let dpor_cached_parallel_matches =
  prop "qcheck: cached dpor at pools 1/2/4 = stateless" 4 (fun p ->
      let prog = Compile.program p in
      let seq = Dpor.run ~no_cache:true ~max_executions:dpor_budget prog in
      (not seq.Dpor.complete)
      || List.for_all
           (fun (_, pool) ->
             let r = Dpor.run ~pool ~max_executions:dpor_budget prog in
             r.Dpor.complete
             && Behavior.Set.equal seq.Dpor.behaviors r.Dpor.behaviors
             && r.Dpor.steps = r.Dpor.novel_steps + r.Dpor.replayed_steps)
           pools)

let explore_cached_matches =
  prop "qcheck: cached explore frontier = capture-by-closure" 4 (fun p ->
      let prog = Compile.program p in
      List.for_all
        (fun pool ->
          let c = Explore.run ~pool ~max_states:20_000 Explore.Preemptive prog in
          let s =
            Explore.run ~pool ~no_cache:true ~max_states:20_000
              Explore.Preemptive prog
          in
          c.Explore.complete = s.Explore.complete
          && Behavior.Set.equal c.Explore.behaviors s.Explore.behaviors
          && c.Explore.states = s.Explore.states
          && c.Explore.deadlocks = s.Explore.deadlocks)
        [ pool2; pool4 ])

let witness_key (w : Infer.yield_witness) =
  ( Format.asprintf "%a" Loc.pp w.Infer.yw_loc,
    w.Infer.yw_round,
    w.Infer.yw_sched )

let infer_cache_oblivious =
  prop "qcheck: infer identical with cache on/off" 6 (fun p ->
      let prog = Compile.program p in
      List.for_all
        (fun (_, pool) ->
          let c = Infer.infer ~pool ~max_steps:300_000 prog in
          let s =
            Infer.infer ~pool ~no_cache:true ~max_steps:300_000 prog
          in
          Loc.Set.equal c.Infer.yields s.Infer.yields
          && c.Infer.rounds = s.Infer.rounds
          && c.Infer.initial_violations = s.Infer.initial_violations
          && c.Infer.events_analyzed = s.Infer.events_analyzed
          && List.map witness_key c.Infer.witnesses
             = List.map witness_key s.Infer.witnesses
          && s.Infer.prefix_events = 0
          && s.Infer.cache_hits = 0)
        pools)

(* Elision accounting: with the default 10-schedule portfolio, every
   prefix event analyzed once spares the other nine re-executions. *)
let test_infer_elision_accounting () =
  List.iter
    (fun (name, prog) ->
      let c = Infer.infer ~max_steps:300_000 prog in
      Alcotest.(check int)
        (name ^ ": elided = (portfolio - 1) * prefix events")
        ((List.length Infer.default_portfolio - 1) * c.Infer.prefix_events)
        c.Infer.elided_events)
    micro_programs

let suite =
  [
    Alcotest.test_case "dpor counter split (novel/replayed/steps)" `Quick
      test_dpor_counter_split;
    Alcotest.test_case "snapshot/resume law per analysis" `Quick
      test_snapshot_resume_law;
    Alcotest.test_case "infer elision accounting" `Quick
      test_infer_elision_accounting;
    dpor_cached_matches_stateless;
    dpor_cached_parallel_matches;
    explore_cached_matches;
    infer_cache_oblivious;
  ]
