(* Differential suite: the single-pass online engine against the two-pass
   reference oracle.

   The single-pass refactor classifies movers optimistically and repairs
   transactions when racy-variable / shared-lock facts arrive late; the
   two-pass mode learns the final fact set first and classifies with full
   knowledge. The two must be extensionally identical — same violations,
   warnings, races and racy sets, in the same order — on every input. This
   suite pins that equivalence on random feasible traces, on traces built
   to deliver facts late (single-threaded prefix, racing epilogue), on
   fork/join-heavy generated programs re-executed as streams, and through
   the inference fixpoint at pool sizes 1, 2 and 4. It also pins the
   operational payoffs: one VM execution per portfolio schedule (the
   two-pass oracle needs two), and the ability to consume a non-replayable
   pipe. *)

(* Bind the shared harness before [open QCheck2] shadows the module name. *)
let gen_trace = Gen.gen_trace
let gen_late_trace = Gen.gen_late_trace
let print_trace = Gen.print_trace
let gen_late_program = Gen.gen_late_program

open QCheck2
open Coop_util
open Coop_trace
open Coop_runtime
open Coop_core
open Coop_workloads

(* Structural equality is right for every field except the variable set,
   whose balanced-tree layout depends on insertion order. *)
let coop_result_equal (a : Cooperability.result) (b : Cooperability.result) =
  a.Cooperability.violations = b.Cooperability.violations
  && a.Cooperability.races = b.Cooperability.races
  && Event.Var_set.equal a.Cooperability.racy b.Cooperability.racy
  && a.Cooperability.events = b.Cooperability.events

let pipeline_result_equal (a : Coop_pipeline.result) (b : Coop_pipeline.result)
    =
  a.Coop_pipeline.races = b.Coop_pipeline.races
  && Event.Var_set.equal a.Coop_pipeline.racy b.Coop_pipeline.racy
  && a.Coop_pipeline.lockset_races = b.Coop_pipeline.lockset_races
  && a.Coop_pipeline.violations = b.Coop_pipeline.violations
  && a.Coop_pipeline.deadlock = b.Coop_pipeline.deadlock
  && a.Coop_pipeline.atomizer = b.Coop_pipeline.atomizer
  && a.Coop_pipeline.conflict = b.Coop_pipeline.conflict
  && a.Coop_pipeline.events = b.Coop_pipeline.events

let coop_agrees trace =
  coop_result_equal
    (Cooperability.check_source (Source.of_trace trace))
    (Cooperability.check_source ~two_pass:true (Source.of_trace trace))

let atomizer_agrees trace =
  Coop_atomicity.Atomizer.check trace
  = Coop_atomicity.Atomizer.check_two_pass trace

let pipeline_agrees mk_source =
  pipeline_result_equal
    (Coop_pipeline.run ~lockset:true ~atomize:true ~conflict:true
       (mk_source ()))
    (Coop_pipeline.run ~lockset:true ~atomize:true ~conflict:true
       ~two_pass:true (mk_source ()))

let prop gen name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:print_trace gen f)

(* --- Checker-level equivalence on random traces --------------------- *)

let coop_on_traces =
  prop gen_trace "cooperability: single-pass = two-pass on feasible traces" 80
    coop_agrees

let coop_on_late_traces =
  prop gen_late_trace
    "cooperability: single-pass = two-pass on late-knowledge traces" 80
    coop_agrees

let atomizer_on_traces =
  prop gen_trace "atomizer: fused = three-stream on feasible traces" 80
    atomizer_agrees

let atomizer_on_late_traces =
  prop gen_late_trace "atomizer: fused = three-stream on late-knowledge traces"
    80 atomizer_agrees

let pipeline_on_late_traces =
  prop gen_late_trace
    "full pipeline: single-pass = two-pass on late-knowledge traces" 50
    (fun trace -> pipeline_agrees (fun () -> Source.of_trace trace))

(* The online sink is the same engine again, attached to a live stream. *)
let online_sink_agrees =
  prop gen_late_trace "Cooperability.online sink = check" 50 (fun trace ->
      let sink, finish = Cooperability.online () in
      Trace.iter sink trace;
      coop_result_equal (finish ()) (Cooperability.check trace))

(* --- Program-level equivalence: re-executed streams ----------------- *)

(* Fork/join-heavy programs with an unsynchronized main prelude: the
   facts about the prelude's variables (and the atomic blocks' implicit
   assumptions) only arrive once the workers run. Both modes re-execute
   deterministically via the scheduler factory. *)
let pipeline_on_late_programs =
  QCheck_alcotest.to_alcotest
    (Test.make ~name:"full pipeline: single-pass = two-pass on late programs"
       ~count:25 ~print:Coop_lang.Pretty.program gen_late_program (fun p ->
         let prog = Coop_lang.Compile.program p in
         let sched () = Sched.random ~seed:31 () in
         pipeline_agrees (fun () ->
             Runner.source ~max_steps:300_000 ~sched prog)))

(* --- Inference: identical fixpoints, half the executions ------------ *)

let pools = [ (1, Pool.create ~jobs:1 ()); (2, Pool.create ~jobs:2 ());
              (4, Pool.create ~jobs:4 ()) ]

let loc_set =
  Alcotest.testable
    (Fmt.of_to_string (fun s ->
         String.concat ","
           (List.map (Format.asprintf "%a" Loc.pp) (Loc.Set.elements s))))
    Loc.Set.equal

let infer_prog () =
  let e = Option.get (Registry.find "philo") in
  Registry.program_of ~threads:2 ~size:2 e

let test_infer_modes_agree () =
  let prog = infer_prog () in
  let reference =
    Infer.infer ~pool:(List.assoc 1 pools) ~max_steps:300_000 prog
  in
  List.iter
    (fun (jobs, pool) ->
      List.iter
        (fun two_pass ->
          let r = Infer.infer ~pool ~max_steps:300_000 ~two_pass prog in
          let tag =
            Printf.sprintf "jobs=%d two_pass=%b" jobs two_pass
          in
          Alcotest.check loc_set (tag ^ ": yields") reference.Infer.yields
            r.Infer.yields;
          Alcotest.(check int) (tag ^ ": rounds") reference.Infer.rounds
            r.Infer.rounds;
          Alcotest.(check int)
            (tag ^ ": initial violations")
            reference.Infer.initial_violations r.Infer.initial_violations;
          Alcotest.(check int)
            (tag ^ ": final check")
            reference.Infer.final_check_violations
            r.Infer.final_check_violations;
          Alcotest.(check int)
            (tag ^ ": events analyzed")
            reference.Infer.events_analyzed r.Infer.events_analyzed)
        [ false; true ])
    pools

(* Span-count accounting: in single-pass mode every [infer/schedule:*]
   span contains exactly one [vm/run:*] span — the program executed once
   per schedule; the two-pass oracle re-executes for its automaton phase,
   so its ratio is exactly two. *)
let count_spans snap prefix =
  List.length
    (List.filter
       (fun s -> String.starts_with ~prefix s.Coop_obs.span_name)
       snap.Coop_obs.spans)

let executions_per_schedule ~two_pass =
  Coop_obs.reset ();
  Coop_obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Coop_obs.disable ();
      Coop_obs.reset ())
    (fun () ->
      let prog = infer_prog () in
      ignore
        (Infer.infer ~pool:(List.assoc 1 pools) ~max_steps:300_000 ~two_pass
           prog);
      let snap = Coop_obs.snapshot () in
      let schedules = count_spans snap "infer/schedule:" in
      let runs = count_spans snap "vm/run:" in
      Alcotest.(check bool) "portfolio ran schedules" true (schedules > 0);
      (schedules, runs))

let test_single_pass_executes_once () =
  let schedules, runs = executions_per_schedule ~two_pass:false in
  Alcotest.(check int) "one VM execution per schedule" schedules runs

let test_two_pass_executes_twice () =
  let schedules, runs = executions_per_schedule ~two_pass:true in
  Alcotest.(check int) "two VM executions per schedule" (2 * schedules) runs

(* --- Pipes: single-pass consumes what two-pass cannot --------------- *)

let test_channel_source () =
  let e = Option.get (Registry.find "philo") in
  let prog = Registry.program_of ~threads:3 ~size:2 e in
  let _, trace =
    Runner.record ~max_steps:3_000_000 ~sched:(Sched.random ~seed:3 ()) prog
  in
  let path = Filename.temp_file "coop_differential" ".tr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.with_file_sink path (fun sink -> Trace.iter sink trace);
      (* The single-pass checker consumes the channel in its one pass. *)
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Alcotest.(check bool) "piped check = recorded check" true
            (coop_result_equal
               (Cooperability.check_source (Source.of_channel ic))
               (Cooperability.check trace)));
      (* A channel source refuses to replay rather than stream garbage. *)
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let source = Source.of_channel ic in
          Alcotest.(check int) "first replay streams every event"
            (Trace.length trace) (Source.count source);
          let raised =
            try
              ignore (Source.count source);
              false
            with Invalid_argument _ -> true
          in
          Alcotest.(check bool) "second replay raises Invalid_argument" true
            raised))

let suite =
  [
    coop_on_traces;
    coop_on_late_traces;
    atomizer_on_traces;
    atomizer_on_late_traces;
    pipeline_on_late_traces;
    online_sink_agrees;
    pipeline_on_late_programs;
    Alcotest.test_case "infer: identical across jobs and modes" `Slow
      test_infer_modes_agree;
    Alcotest.test_case "infer single-pass: 1 execution per schedule" `Quick
      test_single_pass_executes_once;
    Alcotest.test_case "infer two-pass: 2 executions per schedule" `Quick
      test_two_pass_executes_twice;
    Alcotest.test_case "channel source: consumable once, by one pass" `Quick
      test_channel_source;
  ]
