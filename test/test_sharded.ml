(* Differential suite: the ownership-sharded engine against the
   sequential fused engine.

   [Coop_core.Sharded] partitions one trace across K sub-engines by
   interned variable/lock/thread ownership, broadcasts synchronization
   events as clock-sync messages and gossips racy/shared facts across
   shards. Sequential (shards = 1, today's engine) stays the oracle: the
   sharded run must be extensionally identical — same races in the same
   order, same racy set, same violations, same atomizer warnings,
   deadlock and conflict results — at every shard count, on every input.
   This suite pins that at K ∈ {1, 2, 4, 8} on random feasible traces,
   on late-knowledge traces (facts crossing shards mid-stream), on
   re-executed generated programs, and on a broadcast-heavy adversary
   where every lock is touched by every thread, so the router's
   clock-sync path dominates. It also pins the [Interner.owner] map's
   stability: ids assigned after a snapshot still route consistently. *)

let gen_trace = Gen.gen_trace
let gen_late_trace = Gen.gen_late_trace
let print_trace = Gen.print_trace
let gen_late_program = Gen.gen_late_program

open QCheck2
open Coop_trace
open Coop_runtime
open Coop_core

let shard_counts = [ 1; 2; 4; 8 ]

let coop_result_equal (a : Cooperability.result) (b : Cooperability.result) =
  a.Cooperability.violations = b.Cooperability.violations
  && a.Cooperability.races = b.Cooperability.races
  && Event.Var_set.equal a.Cooperability.racy b.Cooperability.racy
  && a.Cooperability.events = b.Cooperability.events

let pipeline_result_equal (a : Coop_pipeline.result) (b : Coop_pipeline.result)
    =
  a.Coop_pipeline.races = b.Coop_pipeline.races
  && Event.Var_set.equal a.Coop_pipeline.racy b.Coop_pipeline.racy
  && a.Coop_pipeline.lockset_races = b.Coop_pipeline.lockset_races
  && a.Coop_pipeline.violations = b.Coop_pipeline.violations
  && a.Coop_pipeline.deadlock = b.Coop_pipeline.deadlock
  && a.Coop_pipeline.atomizer = b.Coop_pipeline.atomizer
  && a.Coop_pipeline.conflict = b.Coop_pipeline.conflict
  && a.Coop_pipeline.events = b.Coop_pipeline.events

(* The oracle is always the explicit [~shards:1] sequential engine, so
   the suite stays meaningful under a [COOP_SHARDS] environment
   override. *)
let coop_agrees trace =
  let reference =
    Cooperability.check_source ~shards:1 (Source.of_trace trace)
  in
  List.for_all
    (fun k ->
      coop_result_equal reference
        (Cooperability.check_source ~shards:k (Source.of_trace trace)))
    shard_counts

let atomizer_agrees trace =
  let reference = Coop_atomicity.Atomizer.check ~shards:1 trace in
  List.for_all
    (fun k -> Coop_atomicity.Atomizer.check ~shards:k trace = reference)
    shard_counts

let pipeline_agrees mk_source =
  let run k =
    Coop_pipeline.run ~lockset:true ~atomize:true ~conflict:true ~shards:k
      (mk_source ())
  in
  let reference = run 1 in
  List.for_all (fun k -> pipeline_result_equal reference (run k)) shard_counts

let prop gen name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:print_trace gen f)

(* --- Broadcast-heavy adversary -------------------------------------- *)

(* Worst case for the router: every lock is acquired and released by
   every thread, over and over, so nearly every event is a clock-sync
   broadcast replicated to all K shards and every lock is shared (each
   publishing a cross-shard fact). Accesses under the locks keep the
   detectors busy; occasional unprotected writes make variables racy;
   yields, function activations and atomic blocks exercise the engines.
   All lock operations are well-paired per thread, so the trace stays
   feasible. *)
let gen_broadcast_trace =
  let open Gen in
  let* rounds = int_range 5 25 in
  let* seed = int_bound 1_000_000 in
  return
    (let rng = Coop_util.Rng.create seed in
     let trace = Trace.create () in
     let loc () = Loc.make ~func:0 ~pc:(Coop_util.Rng.int rng 40) ~line:1 in
     let emit tid op = Trace.add trace (Event.make ~tid ~op ~loc:(loc ())) in
     let n_threads = 4 in
     let locks = [| 0; 1; 2 |] in
     let vars =
       [| Event.Global 0; Event.Global 1; Event.Cell (0, 0) |]
     in
     for t = 1 to n_threads - 1 do
       emit 0 (Event.Fork t)
     done;
     let tids = Array.init n_threads Fun.id in
     for _ = 1 to rounds do
       (* Each round every thread walks the whole lock array, in a
          freshly shuffled thread order. *)
       let order = Array.copy tids in
       for i = n_threads - 1 downto 1 do
         let j = Coop_util.Rng.int rng (i + 1) in
         let tmp = order.(i) in
         order.(i) <- order.(j);
         order.(j) <- tmp
       done;
       Array.iter
         (fun t ->
           let entered = Coop_util.Rng.int rng 3 = 0 in
           if entered then emit t (Event.Enter (t mod 2));
           Array.iter
             (fun l ->
               emit t (Event.Acquire l);
               if Coop_util.Rng.int rng 2 = 0 then
                 emit t (Event.Write (Coop_util.Rng.pick rng vars))
               else emit t (Event.Read (Coop_util.Rng.pick rng vars));
               emit t (Event.Release l))
             locks;
           (* Unprotected access: races, hence cross-shard facts. *)
           if Coop_util.Rng.int rng 3 = 0 then
             emit t (Event.Write (Coop_util.Rng.pick rng vars));
           if entered then emit t (Event.Exit (t mod 2));
           if Coop_util.Rng.int rng 2 = 0 then emit t Event.Yield)
         order
     done;
     for t = 1 to n_threads - 1 do
       emit 0 (Event.Join t)
     done;
     trace)

(* --- Equivalence properties ------------------------------------------ *)

let coop_on_traces =
  prop gen_trace "cooperability: sharded(1/2/4/8) = sequential on traces" 40
    coop_agrees

let coop_on_late_traces =
  prop gen_late_trace
    "cooperability: sharded(1/2/4/8) = sequential on late-knowledge traces" 40
    coop_agrees

let coop_on_broadcast_traces =
  prop gen_broadcast_trace
    "cooperability: sharded(1/2/4/8) = sequential on broadcast-heavy traces"
    40 coop_agrees

let atomizer_on_late_traces =
  prop gen_late_trace
    "atomizer: sharded(1/2/4/8) = sequential on late-knowledge traces" 30
    atomizer_agrees

let atomizer_on_broadcast_traces =
  prop gen_broadcast_trace
    "atomizer: sharded(1/2/4/8) = sequential on broadcast-heavy traces" 30
    atomizer_agrees

let pipeline_on_late_traces =
  prop gen_late_trace
    "full pipeline: sharded(1/2/4/8) = sequential on late-knowledge traces"
    20 (fun trace -> pipeline_agrees (fun () -> Source.of_trace trace))

let pipeline_on_broadcast_traces =
  prop gen_broadcast_trace
    "full pipeline: sharded(1/2/4/8) = sequential on broadcast-heavy traces"
    20 (fun trace -> pipeline_agrees (fun () -> Source.of_trace trace))

let pipeline_on_late_programs =
  QCheck_alcotest.to_alcotest
    (Test.make
       ~name:"full pipeline: sharded(1/2/4/8) = sequential on late programs"
       ~count:10 ~print:Coop_lang.Pretty.program gen_late_program (fun p ->
         let prog = Coop_lang.Compile.program p in
         let sched () = Sched.random ~seed:31 () in
         pipeline_agrees (fun () ->
             Runner.source ~max_steps:300_000 ~sched prog)))

(* --- The ownership map ------------------------------------------------ *)

(* The router takes no snapshot of the interner — it may not: ids keep
   being assigned mid-trace. This pins the property that makes that
   sound: [owner] depends only on the id, so the routing of every id
   observed at any prefix is unchanged by later growth. *)
let test_owner_stable () =
  let itn = Interner.create () in
  let loc = Loc.make ~func:0 ~pc:0 ~line:1 in
  for i = 0 to 9 do
    Interner.note itn
      (Event.make ~tid:i ~op:(Event.Read (Event.Global i)) ~loc)
  done;
  let snapshot =
    List.init (Interner.n_vars itn) (fun id -> Interner.owner itn id ~shard:4)
  in
  (* Grow the id space mid-trace, well past the snapshot. *)
  for i = 10 to 199 do
    Interner.note itn
      (Event.make ~tid:(i mod 7) ~op:(Event.Write (Event.Global i)) ~loc)
  done;
  let after = List.init 10 (fun id -> Interner.owner itn id ~shard:4) in
  Alcotest.(check (list int))
    "ids assigned before the snapshot still route identically" snapshot after;
  for id = 0 to Interner.n_vars itn - 1 do
    Alcotest.(check int) "modular map" (id mod 4)
      (Interner.owner itn id ~shard:4)
  done;
  Alcotest.(check int) "one shard owns everything" 0
    (Interner.owner itn 7 ~shard:1);
  let raised =
    try
      ignore (Interner.owner itn (-1) ~shard:4);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative id rejected" true raised

(* --- default_shards --------------------------------------------------- *)

let test_default_shards () =
  let with_env v f =
    let old = Sys.getenv_opt "COOP_SHARDS" in
    (match v with
    | Some v -> Unix.putenv "COOP_SHARDS" v
    | None -> Unix.putenv "COOP_SHARDS" "");
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "COOP_SHARDS" (Option.value old ~default:""))
      f
  in
  with_env (Some "4") (fun () ->
      Alcotest.(check int) "COOP_SHARDS=4" 4 (Sharded.default_shards ()));
  with_env (Some "garbage") (fun () ->
      Alcotest.(check int) "garbage falls back to 1" 1
        (Sharded.default_shards ()));
  with_env (Some "0") (fun () ->
      Alcotest.(check int) "0 falls back to 1" 1 (Sharded.default_shards ()));
  with_env None (fun () ->
      Alcotest.(check int) "unset is 1" 1 (Sharded.default_shards ()))

let suite =
  [
    coop_on_traces;
    coop_on_late_traces;
    coop_on_broadcast_traces;
    atomizer_on_late_traces;
    atomizer_on_broadcast_traces;
    pipeline_on_late_traces;
    pipeline_on_broadcast_traces;
    pipeline_on_late_programs;
    Alcotest.test_case "Interner.owner: stable under mid-trace growth" `Quick
      test_owner_stable;
    Alcotest.test_case "Sharded.default_shards: COOP_SHARDS parsing" `Quick
      test_default_shards;
  ]
