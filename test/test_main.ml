(* The full test suite: one alcotest section per module family. *)

let () =
  Alcotest.run "coop"
    [
      ("util.rng", Test_rng.suite);
      ("util.deque", Test_deque.suite);
      ("util.pool", Test_pool.suite);
      ("util.stats", Test_stats.suite);
      ("util.table", Test_table.suite);
      ("util.json", Test_json.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("trace.serialize", Test_serialize.suite);
      ("trace.codec", Test_codec.suite);
      ("race.vclock", Test_vclock.suite);
      ("race.detectors", Test_race.suite);
      ("race.lockset", Test_lockset.suite);
      ("lang.lexer", Test_lexer.suite);
      ("lang.parser", Test_parser.suite);
      ("lang.resolve", Test_resolve.suite);
      ("lang.compile", Test_compile.suite);
      ("lang.eval", Test_eval.suite);
      ("runtime.vm", Test_vm.suite);
      ("runtime.sched", Test_sched.suite);
      ("runtime.runner", Test_runner.suite);
      ("runtime.explore", Test_explore.suite);
      ("runtime.monitor", Test_monitor.suite);
      ("core.mover", Test_mover.suite);
      ("core.automaton", Test_automaton.suite);
      ("core.cooperability", Test_cooperability.suite);
      ("core.infer", Test_infer.suite);
      ("core.metrics", Test_metrics.suite);
      ("core.equivalence", Test_equivalence.suite);
      ("core.deadlock", Test_deadlock.suite);
      ("atomicity", Test_atomicity.suite);
      ("pipeline", Test_pipeline.suite);
      ("differential", Test_differential.suite);
      ("sharded", Test_sharded.suite);
      ("witness", Test_witness.suite);
      ("static", Test_static.suite);
      ("workloads", Test_workloads.suite);
      ("fuzz", Test_fuzz.suite);
      ("parallel", Test_parallel.suite);
      ("replay", Test_replay.suite);
      ("sample-programs", Test_programs.suite);
    ]
