(* Whole-stack fuzzing: random well-formed concurrent programs are run
   through the complete pipeline (compile -> schedulers -> race detectors ->
   cooperability -> inference). All loops are bounded and all array indices
   are masked, so every generated program terminates fault-free under every
   scheduler — which the properties then verify, along with the analysis
   invariants. *)

(* The program generator lives in the shared harness (Gen); bind it before
   [open QCheck2] shadows the module name. *)
let gen_program = Gen.gen_concurrent_program

open QCheck2
open Coop_lang
open Coop_runtime
open Coop_core

let compile p = Compile.program p

let prop name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:Pretty.program gen_program f)

let terminates =
  prop "generated programs terminate fault-free under every scheduler" 60
    (fun p ->
      let prog = compile p in
      List.for_all
        (fun sched ->
          let o =
            Runner.run ~max_steps:300_000 ~sched
              ~sink:Coop_trace.Trace.Sink.ignore prog
          in
          o.Runner.termination = Runner.Completed
          && Vm.failures o.Runner.final = [])
        [ Sched.random ~seed:3 (); Sched.round_robin ~quantum:2 ();
          Sched.cooperative (); Sched.pct ~seed:5 ~depth:3 ~change_span:1000 () ])

let detectors_agree =
  prop "fasttrack = naive HB on real program traces" 60 (fun p ->
      let prog = compile p in
      let _, trace =
        Runner.record ~max_steps:300_000 ~sched:(Sched.random ~seed:11 ()) prog
      in
      Coop_trace.Event.Var_set.equal
        (Coop_race.Fasttrack.racy_vars_of_trace trace)
        (Coop_race.Naive_hb.racy_vars trace))

let lockset_superset =
  prop "lockset racy contains fasttrack racy on real traces" 60 (fun p ->
      let prog = compile p in
      let _, trace =
        Runner.record ~max_steps:300_000 ~sched:(Sched.random ~seed:17 ()) prog
      in
      Coop_trace.Event.Var_set.subset
        (Coop_race.Fasttrack.racy_vars_of_trace trace)
        (Coop_race.Lockset.racy_vars_of_trace trace))

let inference_fixpoint =
  prop "yield inference reaches a clean fixpoint" 25 (fun p ->
      let prog = compile p in
      let portfolio =
        [ (fun () -> Sched.random ~seed:3 ());
          (fun () -> Sched.round_robin ~quantum:1 ());
          (fun () -> Sched.random ~seed:91 ()) ]
      in
      let inf = Infer.infer ~portfolio ~max_steps:300_000 prog in
      inf.Infer.final_check_violations = 0)

let serialization_roundtrip =
  prop "recorded traces serialize round trip" 40 (fun p ->
      let prog = compile p in
      let _, trace =
        Runner.record ~max_steps:300_000 ~sched:(Sched.random ~seed:29 ()) prog
      in
      let trace' =
        Coop_trace.Serialize.of_string (Coop_trace.Serialize.to_string trace)
      in
      Coop_trace.Trace.length trace = Coop_trace.Trace.length trace')

let static_sound =
  (* The sound implication: a statically clean program has no dynamic
     violations under any schedule. (Yield LOCATION sets can legitimately
     differ — e.g. the dynamic analysis proves a lock-array element
     thread-local per handle where the static one shares the whole group,
     shifting the repair point by an instruction — so location containment
     is not the right property.) *)
  prop "statically clean implies dynamically clean" 25 (fun p ->
      let prog = compile p in
      if Coop_static.Check.check prog <> [] then true
      else begin
        List.for_all
          (fun sched ->
            let _, trace = Runner.record ~max_steps:300_000 ~sched prog in
            (Cooperability.check trace).Cooperability.violations = [])
          [ Sched.random ~seed:3 (); Sched.round_robin ~quantum:1 ();
            Sched.random ~seed:77 () ]
      end)

let suite =
  [
    terminates;
    detectors_agree;
    lockset_superset;
    inference_fixpoint;
    serialization_roundtrip;
    static_sound;
  ]
