open Coop_race
open QCheck2
module P = Vclock.Persistent

let bindings_gen =
  Gen.list_size (Gen.int_bound 6)
    (Gen.pair (Gen.int_bound 5) (Gen.int_bound 20))

let gen_flat = Gen.map Vclock.of_list bindings_gen
let gen_pers = Gen.map P.of_list bindings_gen

let print_flat c = Format.asprintf "%a" Vclock.pp c
let print_pers c = Format.asprintf "%a" P.pp c

(* --- Flat implementation: unit tests ---------------------------------- *)

let test_flat_empty () =
  let c = Vclock.create () in
  Alcotest.(check int) "absent is 0" 0 (Vclock.get c 3);
  Alcotest.(check bool) "empty leq anything" true
    (Vclock.leq c (Vclock.of_list [ (0, 5) ]))

let test_flat_set_get () =
  let c = Vclock.create () in
  Vclock.set c 2 7;
  Alcotest.(check int) "set value" 7 (Vclock.get c 2);
  Alcotest.(check int) "others zero" 0 (Vclock.get c 0);
  Alcotest.(check int) "beyond capacity zero" 0 (Vclock.get c 1000);
  Vclock.set c 2 0;
  Alcotest.(check bool) "zeroed equals empty" true
    (Vclock.equal c (Vclock.create ()))

let test_flat_tick () =
  let c = Vclock.create () in
  Vclock.tick_in_place c 1;
  Vclock.tick_in_place c 1;
  Alcotest.(check int) "ticked twice" 2 (Vclock.get c 1)

let test_flat_join_into () =
  let a = Vclock.of_list [ (0, 3); (1, 1) ] in
  let b = Vclock.of_list [ (1, 4); (2, 2) ] in
  Vclock.join_into ~into:a b;
  Alcotest.(check int) "comp 0" 3 (Vclock.get a 0);
  Alcotest.(check int) "comp 1" 4 (Vclock.get a 1);
  Alcotest.(check int) "comp 2" 2 (Vclock.get a 2);
  (* b must be untouched *)
  Alcotest.(check int) "src comp 1" 4 (Vclock.get b 1);
  Alcotest.(check int) "src comp 0" 0 (Vclock.get b 0)

let test_flat_copy () =
  let a = Vclock.of_list [ (0, 3); (4, 1) ] in
  let b = Vclock.copy a in
  Vclock.tick_in_place b 0;
  Alcotest.(check int) "copy is detached" 3 (Vclock.get a 0);
  Alcotest.(check int) "copy ticked" 4 (Vclock.get b 0);
  let c = Vclock.of_list [ (9, 9) ] in
  Vclock.copy_into ~into:c a;
  Alcotest.(check bool) "copy_into overwrites" true (Vclock.equal c a);
  Alcotest.(check int) "stale component cleared" 0 (Vclock.get c 9);
  Vclock.clear c;
  Alcotest.(check bool) "clear empties" true (Vclock.equal c (Vclock.create ()))

let test_flat_leq () =
  let a = Vclock.of_list [ (0, 1) ] in
  let b = Vclock.of_list [ (0, 2); (1, 1) ] in
  Alcotest.(check bool) "a leq b" true (Vclock.leq a b);
  Alcotest.(check bool) "b not leq a" false (Vclock.leq b a)

(* --- Persistent reference implementation: unit tests ------------------- *)

let test_pers_empty () =
  Alcotest.(check int) "absent is 0" 0 (P.get P.empty 3);
  Alcotest.(check bool) "empty leq anything" true
    (P.leq P.empty (P.of_list [ (0, 5) ]))

let test_pers_set_get () =
  let c = P.set P.empty 2 7 in
  Alcotest.(check int) "set value" 7 (P.get c 2);
  Alcotest.(check int) "others zero" 0 (P.get c 0);
  let c = P.set c 2 0 in
  Alcotest.(check bool) "zero normalizes to empty" true (P.equal c P.empty)

let test_pers_tick () =
  let c = P.tick (P.tick P.empty 1) 1 in
  Alcotest.(check int) "ticked twice" 2 (P.get c 1)

let test_pers_join () =
  let a = P.of_list [ (0, 3); (1, 1) ] in
  let b = P.of_list [ (1, 4); (2, 2) ] in
  let j = P.join a b in
  Alcotest.(check int) "comp 0" 3 (P.get j 0);
  Alcotest.(check int) "comp 1" 4 (P.get j 1);
  Alcotest.(check int) "comp 2" 2 (P.get j 2)

(* --- Lattice laws, for both implementations ---------------------------- *)

let prop name gen f = QCheck_alcotest.to_alcotest (Test.make ~name ~count:300 gen f)

(* The flat side states each law with [copy] + in-place ops so the laws
   also exercise the mutating entry points, not just [of_list]. *)
let flat_join a b =
  let j = Vclock.copy a in
  Vclock.join_into ~into:j b;
  j

module type CLOCK = sig
  type t

  val join : t -> t -> t
  val tick : t -> int -> t
  val leq : t -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val of_list : (int * int) list -> t
  val to_list : t -> (int * int) list
end

let lattice_suite (type c) name (module C : CLOCK with type t = c) gen =
  let p n = prop (name ^ ": " ^ n) in
  [
    p "join commutative" (Gen.pair gen gen) (fun (a, b) ->
        C.equal (C.join a b) (C.join b a));
    p "join associative" (Gen.triple gen gen gen) (fun (a, b, c) ->
        C.equal (C.join a (C.join b c)) (C.join (C.join a b) c));
    p "join idempotent" gen (fun a -> C.equal (C.join a a) a);
    p "join is upper bound" (Gen.pair gen gen) (fun (a, b) ->
        let j = C.join a b in
        C.leq a j && C.leq b j);
    p "join is least upper bound" (Gen.triple gen gen gen) (fun (a, b, u) ->
        QCheck2.assume (C.leq a u && C.leq b u);
        C.leq (C.join a b) u);
    p "leq reflexive" gen (fun a -> C.leq a a);
    p "leq antisymmetric" (Gen.pair gen gen) (fun (a, b) ->
        QCheck2.assume (C.leq a b && C.leq b a);
        C.equal a b);
    p "leq transitive" (Gen.triple gen gen gen) (fun (a, b, c) ->
        QCheck2.assume (C.leq a b && C.leq b c);
        C.leq a c);
    p "tick strictly increases" (Gen.pair gen (Gen.int_bound 5)) (fun (a, t) ->
        let a' = C.tick a t in
        C.leq a a' && not (C.leq a' a));
    p "to_list/of_list roundtrip" gen (fun a ->
        C.equal a (C.of_list (C.to_list a)));
    p "compare consistent with equal" (Gen.pair gen gen) (fun (a, b) ->
        C.equal a b = (C.compare a b = 0));
  ]

let flat_laws =
  lattice_suite "flat"
    (module struct
      type t = Vclock.t

      let join = flat_join

      let tick a t =
        let a' = Vclock.copy a in
        Vclock.tick_in_place a' t;
        a'

      let leq = Vclock.leq
      let equal = Vclock.equal
      let compare = Vclock.compare
      let of_list = Vclock.of_list
      let to_list = Vclock.to_list
    end)
    gen_flat

let pers_laws =
  lattice_suite "persistent"
    (module struct
      type t = P.t

      let join = P.join
      let tick = P.tick
      let leq = P.leq
      let equal = P.equal
      let compare = P.compare
      let of_list = P.of_list
      let to_list = P.to_list
    end)
    gen_pers

(* --- Differential: flat == persistent on random op sequences ----------- *)

(* A random program over the clock API, interpreted under both
   representations simultaneously; every intermediate state must agree.
   This pins the in-place operations (tick/join/copy_into/set/clear) to
   the persistent oracle, not just the pure constructors. *)
type op =
  | Set of int * int
  | Tick of int
  | Join of (int * int) list
  | Copy_from of (int * int) list
  | Clear

let op_gen =
  Gen.oneof
    [
      Gen.map2 (fun t n -> Set (t, n)) (Gen.int_bound 5) (Gen.int_bound 20);
      Gen.map (fun t -> Tick t) (Gen.int_bound 5);
      Gen.map (fun l -> Join l) bindings_gen;
      Gen.map (fun l -> Copy_from l) bindings_gen;
      Gen.return Clear;
    ]

let print_ops ops =
  String.concat "; "
    (List.map
       (function
         | Set (t, n) -> Printf.sprintf "set %d %d" t n
         | Tick t -> Printf.sprintf "tick %d" t
         | Join l -> "join " ^ print_pers (P.of_list l)
         | Copy_from l -> "copy_from " ^ print_pers (P.of_list l)
         | Clear -> "clear")
       ops)

let agree flat pers =
  Vclock.equal flat (Vclock.of_persistent pers)
  && P.equal (Vclock.to_persistent flat) pers
  && Vclock.to_list flat = P.to_list pers
  && List.for_all
       (fun t -> Vclock.get flat t = P.get pers t)
       [ 0; 1; 2; 3; 4; 5; 6; 100 ]

let differential_suite =
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"flat = persistent on random op sequences" ~count:500
         ~print:print_ops
         (Gen.list_size (Gen.int_bound 30) op_gen)
         (fun ops ->
           let flat = Vclock.create () in
           let pers = ref P.empty in
           List.for_all
             (fun op ->
               (match op with
               | Set (t, n) ->
                   Vclock.set flat t n;
                   pers := P.set !pers t n
               | Tick t ->
                   Vclock.tick_in_place flat t;
                   pers := P.tick !pers t
               | Join l ->
                   Vclock.join_into ~into:flat (Vclock.of_list l);
                   pers := P.join !pers (P.of_list l)
               | Copy_from l ->
                   Vclock.copy_into ~into:flat (Vclock.of_list l);
                   pers := P.of_list l
               | Clear ->
                   Vclock.clear flat;
                   pers := P.empty);
               agree flat !pers)
             ops));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"leq/equal/compare agree across representations"
         ~count:500
         (Gen.pair bindings_gen bindings_gen)
         (fun (la, lb) ->
           let fa = Vclock.of_list la and fb = Vclock.of_list lb in
           let pa = P.of_list la and pb = P.of_list lb in
           Vclock.leq fa fb = P.leq pa pb
           && Vclock.equal fa fb = P.equal pa pb
           && Stdlib.compare (Vclock.compare fa fb = 0) (P.compare pa pb = 0)
              = 0));
  ]

(* --- Epochs ------------------------------------------------------------ *)

let test_epoch_pack () =
  let e = Epoch.make ~tid:3 ~clock:42 in
  Alcotest.(check int) "tid" 3 (Epoch.tid e);
  Alcotest.(check int) "clock" 42 (Epoch.clock e);
  Alcotest.(check bool) "not bottom" false (Epoch.is_bottom e);
  Alcotest.(check bool) "bottom is bottom" true (Epoch.is_bottom Epoch.bottom)

let test_epoch_leq () =
  let c = Vclock.of_list [ (2, 5) ] in
  Alcotest.(check bool) "bottom leq" true (Epoch.leq Epoch.bottom c);
  Alcotest.(check bool) "leq same" true (Epoch.leq (Epoch.make ~tid:2 ~clock:5) c);
  Alcotest.(check bool) "leq below" true (Epoch.leq (Epoch.make ~tid:2 ~clock:4) c);
  Alcotest.(check bool) "not leq above" false (Epoch.leq (Epoch.make ~tid:2 ~clock:6) c);
  Alcotest.(check bool) "other thread" false (Epoch.leq (Epoch.make ~tid:0 ~clock:1) c)

let test_epoch_of_thread () =
  let c = Vclock.of_list [ (1, 9) ] in
  let e = Epoch.of_thread 1 c in
  Alcotest.(check int) "clock snapshot" 9 (Epoch.clock e);
  Alcotest.(check string) "pp" "9@1" (Format.asprintf "%a" Epoch.pp e);
  Alcotest.(check string) "pp bottom" "_|_" (Format.asprintf "%a" Epoch.pp Epoch.bottom)

let test_epoch_overflow () =
  (* The packed representation shifts the clock above the tid field; a
     clock past [max_clock] used to wrap silently into the sign bit. *)
  let e = Epoch.make ~tid:7 ~clock:Epoch.max_clock in
  Alcotest.(check int) "max clock roundtrips" Epoch.max_clock (Epoch.clock e);
  Alcotest.(check int) "tid intact at max clock" 7 (Epoch.tid e);
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : Epoch.t) -> false
  in
  Alcotest.(check bool) "max_clock + 1 raises" true
    (raises (fun () -> Epoch.make ~tid:0 ~clock:(Epoch.max_clock + 1)));
  Alcotest.(check bool) "max_int raises" true
    (raises (fun () -> Epoch.make ~tid:0 ~clock:max_int));
  Alcotest.(check bool) "negative clock raises" true
    (raises (fun () -> Epoch.make ~tid:0 ~clock:(-1)));
  Alcotest.(check bool) "negative tid raises" true
    (raises (fun () -> Epoch.make ~tid:(-1) ~clock:0))

let epoch_qsuite =
  [
    prop "epoch leq agrees with clock leq on both representations"
      (Gen.pair (Gen.pair (Gen.int_bound 5) (Gen.int_bound 20)) bindings_gen)
      (fun ((t, n), l) ->
        let e = Epoch.make ~tid:t ~clock:n in
        let flat = Vclock.of_list l in
        let expected = n <= P.get (P.of_list l) t in
        Epoch.leq e flat = expected
        && Epoch.leq e (Vclock.of_persistent (Vclock.to_persistent flat))
           = expected);
    prop "of_thread snapshots the component"
      (Gen.pair (Gen.int_bound 5) bindings_gen) (fun (t, l) ->
        let c = Vclock.of_list l in
        let e = Epoch.of_thread t c in
        Epoch.tid e = t && Epoch.clock e = Vclock.get c t && Epoch.leq e c);
  ]

let suite =
  [
    Alcotest.test_case "flat: empty clock" `Quick test_flat_empty;
    Alcotest.test_case "flat: set/get" `Quick test_flat_set_get;
    Alcotest.test_case "flat: tick_in_place" `Quick test_flat_tick;
    Alcotest.test_case "flat: join_into" `Quick test_flat_join_into;
    Alcotest.test_case "flat: copy/copy_into/clear" `Quick test_flat_copy;
    Alcotest.test_case "flat: leq" `Quick test_flat_leq;
    Alcotest.test_case "persistent: empty clock" `Quick test_pers_empty;
    Alcotest.test_case "persistent: set/get" `Quick test_pers_set_get;
    Alcotest.test_case "persistent: tick" `Quick test_pers_tick;
    Alcotest.test_case "persistent: join" `Quick test_pers_join;
    Alcotest.test_case "epoch packing" `Quick test_epoch_pack;
    Alcotest.test_case "epoch leq" `Quick test_epoch_leq;
    Alcotest.test_case "epoch of_thread and pp" `Quick test_epoch_of_thread;
    Alcotest.test_case "epoch overflow guard" `Quick test_epoch_overflow;
  ]
  @ flat_laws @ pers_laws @ differential_suite @ epoch_qsuite

let _ = print_flat
