open Coop_trace

let ev tid op = Event.make ~tid ~op ~loc:Loc.none

let test_loc_order () =
  let a = Loc.make ~func:0 ~pc:1 ~line:1 in
  let b = Loc.make ~func:0 ~pc:2 ~line:1 in
  let c = Loc.make ~func:1 ~pc:0 ~line:9 in
  Alcotest.(check bool) "pc order" true (Loc.compare a b < 0);
  Alcotest.(check bool) "func dominates" true (Loc.compare b c < 0);
  Alcotest.(check bool) "equal" true (Loc.equal a a);
  Alcotest.(check string) "pp" "f0:pc1(line 1)" (Loc.to_string a);
  Alcotest.(check string) "pp none" "<none>" (Loc.to_string Loc.none)

let test_loc_set () =
  let a = Loc.make ~func:0 ~pc:1 ~line:1 in
  let s = Loc.Set.add a (Loc.Set.add a Loc.Set.empty) in
  Alcotest.(check int) "deduped" 1 (Loc.Set.cardinal s)

let test_var_compare () =
  Alcotest.(check bool) "global order" true
    (Event.compare_var (Event.Global 0) (Event.Global 1) < 0);
  Alcotest.(check bool) "global < cell" true
    (Event.compare_var (Event.Global 99) (Event.Cell (0, 0)) < 0);
  Alcotest.(check bool) "cell index order" true
    (Event.compare_var (Event.Cell (1, 2)) (Event.Cell (1, 3)) < 0);
  Alcotest.(check bool) "equal" true
    (Event.equal_var (Event.Cell (1, 2)) (Event.Cell (1, 2)))

let test_event_accessors () =
  Alcotest.(check bool) "read is access" true (Event.is_access (Event.Read (Event.Global 0)));
  Alcotest.(check bool) "acquire is not" false (Event.is_access (Event.Acquire 0));
  (match Event.accessed_var (Event.Write (Event.Cell (2, 3))) with
  | Some v -> Alcotest.(check bool) "accessed var" true (Event.equal_var v (Event.Cell (2, 3)))
  | None -> Alcotest.fail "expected a var");
  Alcotest.(check bool) "yield has no var" true (Event.accessed_var Event.Yield = None)

let test_trace_growth () =
  let t = Trace.create () in
  for i = 0 to 999 do
    Trace.add t (ev (i mod 3) (Event.Out i))
  done;
  Alcotest.(check int) "length" 1000 (Trace.length t);
  (match (Trace.get t 500).Event.op with
  | Event.Out 500 -> ()
  | _ -> Alcotest.fail "wrong event at index 500");
  Alcotest.check_raises "oob" (Invalid_argument "Trace.get: index out of bounds")
    (fun () -> ignore (Trace.get t 1000))

let test_trace_iteration () =
  let t = Trace.of_list [ ev 0 Event.Yield; ev 1 Event.Yield; ev 0 (Event.Out 5) ] in
  Alcotest.(check int) "fold counts" 3 (Trace.fold (fun n _ -> n + 1) 0 t);
  Alcotest.(check (list int)) "threads" [ 0; 1 ] (Trace.threads t);
  Alcotest.(check int) "count yields" 2
    (Trace.count (fun e -> e.Event.op = Event.Yield) t);
  let idxs = ref [] in
  Trace.iteri (fun i _ -> idxs := i :: !idxs) t;
  Alcotest.(check (list int)) "iteri order" [ 2; 1; 0 ] !idxs

let test_roundtrip_list () =
  let es = [ ev 0 (Event.Read (Event.Global 1)); ev 2 (Event.Acquire 0) ] in
  let t = Trace.of_list es in
  Alcotest.(check int) "same length" 2 (List.length (Trace.to_list t))

let test_sink_tee_and_record () =
  let t1 = Trace.create () and t2 = Trace.create () in
  let sink = Trace.Sink.tee [ Trace.Sink.recording t1; Trace.Sink.recording t2 ] in
  sink (ev 0 Event.Yield);
  sink (ev 1 Event.Yield);
  Alcotest.(check int) "t1 got both" 2 (Trace.length t1);
  Alcotest.(check int) "t2 got both" 2 (Trace.length t2);
  Trace.Sink.ignore (ev 0 Event.Yield)

let test_sink_tee_degenerate () =
  (* The singleton case must be the sink itself — no wrapper closure on the
     per-event hot path — and the empty case must swallow events. *)
  let t = Trace.create () in
  let s = Trace.Sink.recording t in
  Alcotest.(check bool) "tee [s] is s" true (Trace.Sink.tee [ s ] == s);
  Trace.Sink.tee [] (ev 0 Event.Yield);
  Alcotest.(check int) "tee [] drops events" 0 (Trace.length t)

let test_timeline_render () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Write (Event.Global 0)); ev 1 (Event.Read (Event.Global 0));
        ev 0 Event.Yield ]
  in
  let s = Timeline.render t in
  let lines = String.split_on_char '\n' s in
  (* header + rule + 3 event rows + trailing newline *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  Alcotest.(check bool) "mentions both threads" true
    (let hdr = List.nth lines 0 in
     let has sub =
       let n = String.length sub and h = String.length hdr in
       let rec go i = i + n <= h && (String.sub hdr i n = sub || go (i + 1)) in
       go 0
     in
     has "t0" && has "t1")

let test_timeline_truncation () =
  let t = Trace.create () in
  for i = 0 to 49 do
    Trace.add t (ev (i mod 2) (Event.Out i))
  done;
  let s = Timeline.render ~max_events:10 t in
  Alcotest.(check bool) "notes truncation" true
    (let has sub str =
       let n = String.length sub and h = String.length str in
       let rec go i = i + n <= h && (String.sub str i n = sub || go (i + 1)) in
       go 0
     in
     has "40 more events" s)

let test_timeline_filter () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Enter 0); ev 0 (Event.Out 1); ev 0 (Event.Exit 0) ]
  in
  let s =
    Timeline.render_filtered
      ~keep:(fun e ->
        match e.Event.op with Event.Enter _ | Event.Exit _ -> false | _ -> true)
      t
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "only one event row" 4 (List.length lines)

let suite =
  [
    Alcotest.test_case "timeline render" `Quick test_timeline_render;
    Alcotest.test_case "timeline truncation" `Quick test_timeline_truncation;
    Alcotest.test_case "timeline filter" `Quick test_timeline_filter;
    Alcotest.test_case "loc ordering and pp" `Quick test_loc_order;
    Alcotest.test_case "loc sets dedupe" `Quick test_loc_set;
    Alcotest.test_case "var compare" `Quick test_var_compare;
    Alcotest.test_case "event accessors" `Quick test_event_accessors;
    Alcotest.test_case "trace growth" `Quick test_trace_growth;
    Alcotest.test_case "trace iteration" `Quick test_trace_iteration;
    Alcotest.test_case "of_list/to_list" `Quick test_roundtrip_list;
    Alcotest.test_case "sinks tee and record" `Quick test_sink_tee_and_record;
    Alcotest.test_case "tee degenerate cases" `Quick test_sink_tee_degenerate;
  ]
