(* Unit tests for the Chase-Lev SPMC deque backing the work-stealing
   pool: a qcheck check against the sequential list model promised by the
   interface, plus a concurrent owner-and-stealers stress run asserting
   every pushed element is handed out exactly once. *)

open Coop_util

type op =
  | Push of int
  | Pop
  | Steal

let op_gen =
  QCheck2.Gen.(
    frequency
      [ (3, map (fun n -> Push n) small_nat); (2, pure Pop); (2, pure Steal) ])

let ops_gen = QCheck2.Gen.(list_size (int_range 0 200) op_gen)

let print_ops ops =
  String.concat "; "
    (List.map
       (function
         | Push n -> Printf.sprintf "push %d" n
         | Pop -> "pop"
         | Steal -> "steal")
       ops)

(* Reference model: a list with the oldest element at the head. Push
   appends at the back, pop removes from the back, steal from the front. *)
let model_pop m =
  match List.rev m with [] -> (None, m) | x :: rev -> (Some x, List.rev rev)

let model_steal = function [] -> (None, []) | x :: tl -> (Some x, tl)

let sequential_model =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"qcheck: deque matches the list model" ~count:500
       ~print:print_ops ops_gen (fun ops ->
         (* A tiny initial capacity so longer op sequences also exercise
            the buffer growth path. *)
         let d = Spmc_deque.create ~capacity:2 ~dummy:(-1) () in
         let model = ref [] in
         List.for_all
           (function
             | Push x ->
                 Spmc_deque.push d x;
                 model := !model @ [ x ];
                 Spmc_deque.length d = List.length !model
             | Pop ->
                 let expect, m = model_pop !model in
                 model := m;
                 Spmc_deque.pop d = expect
             | Steal ->
                 let expect, m = model_steal !model in
                 model := m;
                 Spmc_deque.steal d = expect)
           ops))

(* Owner pushes [0, n) (popping some back along the way) while stealer
   domains drain the other end. Whatever the interleaving, the union of
   popped and stolen values must be exactly [0, n) — nothing lost to a
   steal/pop race on the last element, nothing handed out twice. *)
let test_concurrent_transfer () =
  let n = 20_000 and stealers = 3 in
  let d = Spmc_deque.create ~dummy:(-1) () in
  let closed = Atomic.make false in
  let stolen = Array.init stealers (fun _ -> ref []) in
  let doms =
    List.init stealers (fun k ->
        Domain.spawn (fun () ->
            let acc = stolen.(k) in
            let rec loop () =
              match Spmc_deque.steal d with
              | Some x ->
                  acc := x :: !acc;
                  loop ()
              | None ->
                  if not (Atomic.get closed) then begin
                    Domain.cpu_relax ();
                    loop ()
                  end
            in
            loop ()))
  in
  let popped = ref [] in
  let take () =
    match Spmc_deque.pop d with
    | Some x -> popped := x :: !popped
    | None -> ()
  in
  for i = 0 to n - 1 do
    Spmc_deque.push d i;
    if i land 7 = 0 then take ()
  done;
  let rec drain () =
    match Spmc_deque.pop d with
    | Some x ->
        popped := x :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set closed true;
  List.iter Domain.join doms;
  let all =
    Array.fold_left (fun acc r -> !r @ acc) !popped stolen
    |> List.sort compare
  in
  Alcotest.(check (list int))
    "popped + stolen = pushed, each exactly once" (List.init n Fun.id) all

let test_basic () =
  let d = Spmc_deque.create ~dummy:0 () in
  Alcotest.(check (option int)) "pop on empty" None (Spmc_deque.pop d);
  Alcotest.(check (option int)) "steal on empty" None (Spmc_deque.steal d);
  Spmc_deque.push d 1;
  Spmc_deque.push d 2;
  Spmc_deque.push d 3;
  Alcotest.(check int) "length" 3 (Spmc_deque.length d);
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Spmc_deque.steal d);
  Alcotest.(check (option int)) "pop newest" (Some 3) (Spmc_deque.pop d);
  Alcotest.(check (option int)) "last element" (Some 2) (Spmc_deque.pop d);
  Alcotest.(check (option int)) "empty again" None (Spmc_deque.steal d)

let suite =
  [
    Alcotest.test_case "push/pop/steal basics" `Quick test_basic;
    sequential_model;
    Alcotest.test_case "concurrent owner + 3 stealers" `Quick
      test_concurrent_transfer;
  ]
