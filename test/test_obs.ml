(* Unit tests for the Coop_obs telemetry library: histogram bucket
   boundaries, span nesting and ordering, counter/timer merge across pool
   workers at several pool sizes, the disabled-mode no-allocation guard,
   attribution arithmetic, the Chrome trace_event structure, and the
   work-stealing telemetry (sample series, counter lanes, the derived
   steals-per-task gauge, and the live pool integration). *)

open Coop_util

(* Every test leaves telemetry off and empty, whatever happened inside —
   the registry is process-global and other suites must not see it. *)
let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Coop_obs.disable ();
      Coop_obs.reset ())
    (fun () ->
      Coop_obs.reset ();
      f ())

let test_hist_bucket_boundaries () =
  let check what want v =
    Alcotest.(check int) what want (Coop_obs.Hist.bucket_exp v)
  in
  (* Bucket [e] covers (2^(e-1), 2^e]. *)
  check "1.0 -> 0" 0 1.0;
  check "0.75 -> 0" 0 0.75;
  check "0.5 -> -1" (-1) 0.5;
  check "2.0 -> 1" 1 2.0;
  check "2.01 -> 2" 2 2.01;
  check "4.0 -> 2" 2 4.0;
  check "1024 -> 10" 10 1024.;
  check "0.25 -> -2" (-2) 0.25;
  (* Clamping and degenerate samples. *)
  check "0 clamps to min" Coop_obs.Hist.min_exp 0.;
  check "negative clamps to min" Coop_obs.Hist.min_exp (-5.);
  check "tiny clamps to min" Coop_obs.Hist.min_exp 1e-30;
  check "nan clamps to min" Coop_obs.Hist.min_exp Float.nan;
  check "huge clamps to max" Coop_obs.Hist.max_exp 1e300;
  check "inf clamps to max" Coop_obs.Hist.max_exp Float.infinity;
  Alcotest.(check bool) "min_exp < max_exp" true
    (Coop_obs.Hist.min_exp < Coop_obs.Hist.max_exp)

let test_hist_observe_and_merge () =
  with_obs (fun () ->
      Coop_obs.enable ();
      List.iter (Coop_obs.observe "h") [ 1.0; 1.5; 2.0; 3.0 ];
      let s = Coop_obs.snapshot () in
      match List.assoc_opt "h" s.Coop_obs.hists with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some h ->
          Alcotest.(check int) "count" 4 h.Coop_obs.Hist.count;
          Alcotest.(check (float 1e-9)) "sum" 7.5 h.Coop_obs.Hist.sum;
          Alcotest.(check (float 1e-9)) "min" 1.0 h.Coop_obs.Hist.min;
          Alcotest.(check (float 1e-9)) "max" 3.0 h.Coop_obs.Hist.max;
          (* 1.0 -> bucket 0; 1.5, 2.0 -> bucket 1; 3.0 -> bucket 2. *)
          Alcotest.(check (list (pair int int)))
            "buckets" [ (0, 1); (1, 2); (2, 1) ] h.Coop_obs.Hist.counts)

let test_span_nesting_and_order () =
  with_obs (fun () ->
      Coop_obs.enable ();
      let r =
        Coop_obs.span "outer" (fun () ->
            Coop_obs.span "inner" (fun () -> 6 * 7))
      in
      Alcotest.(check int) "span returns the body's value" 42 r;
      Coop_obs.span "later" (fun () -> ());
      let s = Coop_obs.snapshot () in
      let find name =
        match
          List.find_opt
            (fun sp -> sp.Coop_obs.span_name = name)
            s.Coop_obs.spans
        with
        | Some sp -> sp
        | None -> Alcotest.fail ("span not recorded: " ^ name)
      in
      let outer = find "outer" and inner = find "inner"
      and later = find "later" in
      Alcotest.(check int) "outer depth" 0 outer.Coop_obs.depth;
      Alcotest.(check int) "inner depth" 1 inner.Coop_obs.depth;
      Alcotest.(check int) "later back to depth 0" 0 later.Coop_obs.depth;
      (* Containment: inner lies within outer's interval. The µs values
         are epoch-relative conversions of absolute clock readings, so
         allow a couple of ulps (~0.5 µs at gettimeofday magnitudes). *)
      let tol = 2. in
      Alcotest.(check bool) "inner starts after outer" true
        (inner.Coop_obs.start_us >= outer.Coop_obs.start_us -. tol);
      Alcotest.(check bool) "inner ends before outer" true
        (inner.Coop_obs.start_us +. inner.Coop_obs.dur_us
        <= outer.Coop_obs.start_us +. outer.Coop_obs.dur_us +. tol);
      (* Snapshot orders spans by start time. *)
      let starts = List.map (fun sp -> sp.Coop_obs.start_us) s.Coop_obs.spans in
      Alcotest.(check bool) "spans sorted by start" true
        (List.sort compare starts = starts))

let test_span_closes_on_exception () =
  with_obs (fun () ->
      Coop_obs.enable ();
      (try Coop_obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Coop_obs.span "after" (fun () -> ());
      let s = Coop_obs.snapshot () in
      let after =
        List.find (fun sp -> sp.Coop_obs.span_name = "after") s.Coop_obs.spans
      in
      Alcotest.(check int) "depth restored after exception" 0
        after.Coop_obs.depth;
      Alcotest.(check bool) "failed span still recorded" true
        (List.exists (fun sp -> sp.Coop_obs.span_name = "boom") s.Coop_obs.spans))

(* Pool workers record into per-domain buffers; the snapshot merge must
   produce identical totals whatever the parallelism. *)
let test_counter_merge_across_pool_sizes () =
  let totals jobs =
    with_obs (fun () ->
        Coop_obs.enable ();
        let p = Pool.create ~jobs () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown p)
          (fun () ->
            ignore
              (Pool.parallel_map p
                 (fun i ->
                   Coop_obs.count "par/ticks" i;
                   Coop_obs.observe "par/size" (float_of_int i);
                   Coop_obs.timer_add "par/work" 0.001 1;
                   i)
                 (List.init 40 (fun i -> i + 1))));
        let s = Coop_obs.snapshot () in
        let counter =
          match List.assoc_opt "par/ticks" s.Coop_obs.counters with
          | Some n -> n
          | None -> Alcotest.fail "counter missing"
        in
        let hist_count, hist_sum =
          match List.assoc_opt "par/size" s.Coop_obs.hists with
          | Some h -> (h.Coop_obs.Hist.count, h.Coop_obs.Hist.sum)
          | None -> Alcotest.fail "histogram missing"
        in
        let timer =
          match List.assoc_opt "par/work" s.Coop_obs.timers with
          | Some t -> t
          | None -> Alcotest.fail "timer missing"
        in
        let by_domain_sum =
          List.fold_left (fun a (_, s) -> a +. s) 0. timer.Coop_obs.by_domain
        in
        Alcotest.(check (float 1e-9))
          "timer by_domain sums to total" timer.Coop_obs.time_s by_domain_sum;
        (counter, hist_count, hist_sum, timer.Coop_obs.calls))
  in
  List.iter
    (fun jobs ->
      let counter, hist_count, hist_sum, timer_calls = totals jobs in
      let what fmt = Printf.sprintf "%s at jobs=%d" fmt jobs in
      Alcotest.(check int) (what "counter total") 820 counter;
      Alcotest.(check int) (what "histogram count") 40 hist_count;
      Alcotest.(check (float 1e-9)) (what "histogram sum") 820. hist_sum;
      Alcotest.(check int) (what "timer calls") 40 timer_calls)
    [ 1; 2; 4 ]

let test_disabled_is_noop () =
  with_obs (fun () ->
      Alcotest.(check bool) "disabled by default" false (Coop_obs.enabled ());
      (* Recording while disabled must allocate no telemetry state. *)
      Coop_obs.count "c" 1;
      Coop_obs.gauge "g" 1.;
      Coop_obs.observe "h" 1.;
      Coop_obs.timer_add "t" 1. 1;
      Alcotest.(check int) "span body still runs" 9
        (Coop_obs.span "s" (fun () -> 9));
      Alcotest.(check int) "no per-domain buffer registered" 0
        (Coop_obs.domains_registered ());
      let s = Coop_obs.snapshot () in
      Alcotest.(check int) "no spans" 0 (List.length s.Coop_obs.spans);
      Alcotest.(check int) "no counters" 0 (List.length s.Coop_obs.counters);
      Alcotest.(check int) "no gauges" 0 (List.length s.Coop_obs.gauges);
      Alcotest.(check int) "no timers" 0 (List.length s.Coop_obs.timers);
      Alcotest.(check int) "no histograms" 0 (List.length s.Coop_obs.hists))

let test_reset_drops_everything () =
  with_obs (fun () ->
      Coop_obs.enable ();
      Coop_obs.count "c" 5;
      Coop_obs.span "s" (fun () -> ());
      Alcotest.(check bool) "buffer registered while enabled" true
        (Coop_obs.domains_registered () > 0);
      Coop_obs.disable ();
      Coop_obs.reset ();
      Alcotest.(check int) "reset drops buffers" 0
        (Coop_obs.domains_registered ());
      let s = Coop_obs.snapshot () in
      Alcotest.(check int) "reset drops counters" 0
        (List.length s.Coop_obs.counters);
      Alcotest.(check int) "reset drops spans" 0 (List.length s.Coop_obs.spans))

let test_attribution_shares_sum_to_one () =
  with_obs (fun () ->
      Coop_obs.enable ();
      Coop_obs.timer_add "checker/fast" 0.06 10;
      Coop_obs.timer_add "checker/slow" 0.03 5;
      Coop_obs.timer_add "analysis/phase1" 0.1 15;
      let rows, total = Coop_obs.attribution (Coop_obs.snapshot ()) in
      Alcotest.(check (float 1e-9)) "total is the phase timer" 0.1 total;
      let share name =
        match List.find_opt (fun r -> r.Coop_obs.checker = name) rows with
        | Some r -> r.Coop_obs.share
        | None -> Alcotest.fail ("attribution row missing: " ^ name)
      in
      Alcotest.(check (float 1e-9)) "fast share" 0.6 (share "fast");
      Alcotest.(check (float 1e-9)) "slow share" 0.3 (share "slow");
      Alcotest.(check (float 1e-9)) "residual share" 0.1
        (share "(dispatch/other)");
      let sum = List.fold_left (fun a r -> a +. r.Coop_obs.share) 0. rows in
      Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 sum;
      (* Largest share first; the residual row carries no event count. *)
      Alcotest.(check string) "sorted by share"
        "fast" (List.hd rows).Coop_obs.checker;
      Alcotest.(check int) "residual has no events" 0
        (List.find
           (fun r -> r.Coop_obs.checker = "(dispatch/other)")
           rows)
          .Coop_obs.events)

let test_chrome_trace_structure () =
  with_obs (fun () ->
      Coop_obs.enable ();
      Coop_obs.span "outer" (fun () -> Coop_obs.span "inner" (fun () -> ()));
      let j = Coop_obs.chrome_trace (Coop_obs.snapshot ()) in
      match j with
      | Json.List items ->
          Alcotest.(check bool) "non-empty" true (items <> []);
          let str k o =
            match Json.member k o with Some (Json.String s) -> Some s | _ -> None
          in
          let metas, events =
            List.partition (fun o -> str "ph" o = Some "M") items
          in
          Alcotest.(check bool) "has process/thread metadata" true
            (List.exists (fun o -> str "name" o = Some "process_name") metas
            && List.exists (fun o -> str "name" o = Some "thread_name") metas);
          Alcotest.(check int) "one X event per span" 2 (List.length events);
          List.iter
            (fun o ->
              Alcotest.(check (option string)) "complete event" (Some "X")
                (str "ph" o);
              Alcotest.(check bool) "pseudo-pid 1" true
                (Json.member "pid" o = Some (Json.Int 1));
              let int_field k =
                match Json.member k o with
                | Some (Json.Int i) -> i
                | _ -> Alcotest.fail (k ^ " must be an integer")
              in
              Alcotest.(check bool) "ts non-negative" true (int_field "ts" >= 0);
              Alcotest.(check bool) "dur at least 1us" true
                (int_field "dur" >= 1);
              ignore (int_field "tid");
              match str "name" o with
              | Some ("outer" | "inner") -> ()
              | _ -> Alcotest.fail "unexpected event name")
            events;
          (* Parse back what we print: the file written by --chrome-trace
             must be valid JSON. *)
          (match Json.of_string (Json.to_string j) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("chrome trace not valid JSON: " ^ e))
      | _ -> Alcotest.fail "chrome trace must be a JSON array")

let test_to_json_schema () =
  with_obs (fun () ->
      Coop_obs.enable ();
      Coop_obs.count "c" 3;
      Coop_obs.span "s" (fun () -> ());
      Coop_obs.timer_add "checker/x" 0.01 2;
      let j = Coop_obs.to_json (Coop_obs.snapshot ()) in
      Alcotest.(check bool) "schema tag" true
        (Json.member "schema" j = Some (Json.String "coop-obs/v1"));
      List.iter
        (fun k ->
          match Json.member k j with
          | Some _ -> ()
          | None -> Alcotest.fail ("missing key: " ^ k))
        [ "spans"; "counters"; "gauges"; "timers"; "histograms"; "samples" ])

(* The derived steals-per-task gauge: pure arithmetic over the merged
   snapshot, checked with hand-planted inputs. *)
let test_steals_per_task_gauge () =
  with_obs (fun () ->
      Coop_obs.enable ();
      Coop_obs.observe "pool/task_us" 10.;
      let before = Coop_obs.snapshot () in
      Alcotest.(check (option (float 1e-9)))
        "absent without any steal" None
        (List.assoc_opt "pool/steals_per_task" before.Coop_obs.gauges);
      Coop_obs.count "pool/steals" 6;
      Coop_obs.observe "pool/task_us" 20.;
      Coop_obs.observe "pool/task_us" 30.;
      let s = Coop_obs.snapshot () in
      Alcotest.(check (option (float 1e-9)))
        "steals / tasks = 6/3" (Some 2.0)
        (List.assoc_opt "pool/steals_per_task" s.Coop_obs.gauges))

(* Timestamped sample series: per-domain append, snapshot merge in time
   order, and the ph:"C" counter lanes in the Chrome trace. *)
let test_sample_series () =
  with_obs (fun () ->
      Coop_obs.enable ();
      Coop_obs.sample "lane" 1.;
      Coop_obs.sample "lane" 2.;
      Coop_obs.sample "lane" 3.;
      let s = Coop_obs.snapshot () in
      (match List.assoc_opt "lane" s.Coop_obs.samples with
      | None -> Alcotest.fail "sample series missing from snapshot"
      | Some records ->
          Alcotest.(check (list (float 1e-9)))
            "values in record order" [ 1.; 2.; 3. ]
            (List.map (fun r -> r.Coop_obs.value) records);
          let ts = List.map (fun r -> r.Coop_obs.ts_us) records in
          Alcotest.(check bool) "timestamps nondecreasing" true
            (List.sort compare ts = ts));
      match Coop_obs.chrome_trace s with
      | Json.List items ->
          let lanes =
            List.filter
              (fun o ->
                Json.member "ph" o = Some (Json.String "C")
                && Json.member "name" o = Some (Json.String "lane"))
              items
          in
          Alcotest.(check int) "one counter event per sample" 3
            (List.length lanes);
          List.iter
            (fun o ->
              match Json.member "args" o with
              | Some args -> (
                  match Json.member "value" args with
                  | Some (Json.Float _ | Json.Int _) -> ()
                  | _ -> Alcotest.fail "counter lane without numeric value")
              | None -> Alcotest.fail "counter lane without args")
            lanes
      | _ -> Alcotest.fail "chrome trace must be a JSON array")

(* End-to-end steal telemetry: real pool, timed-wait tasks (so idle
   domains actually steal), invariants that hold whatever the
   interleaving: one task_us observation per task, steal count = steal
   latency observations, and the derived gauge present exactly when a
   steal happened. *)
let test_pool_steal_telemetry () =
  with_obs (fun () ->
      Coop_obs.enable ();
      let p = Pool.create ~jobs:4 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown p)
        (fun () ->
          ignore
            (Pool.parallel_map p
               (fun i -> Unix.sleepf (0.001 *. float_of_int (1 + (i mod 3))))
               (List.init 16 Fun.id)));
      let s = Coop_obs.snapshot () in
      (match List.assoc_opt "pool/task_us" s.Coop_obs.hists with
      | None -> Alcotest.fail "pool/task_us histogram missing"
      | Some h ->
          Alcotest.(check int) "one task_us observation per task" 16
            h.Coop_obs.Hist.count);
      let steals =
        match List.assoc_opt "pool/steals" s.Coop_obs.counters with
        | Some n -> n
        | None -> 0
      in
      let latencies =
        match List.assoc_opt "pool/steal_latency_us" s.Coop_obs.hists with
        | Some h -> h.Coop_obs.Hist.count
        | None -> 0
      in
      Alcotest.(check int) "steal count = steal latency observations" steals
        latencies;
      Alcotest.(check bool) "steals_per_task present iff steals happened"
        (steals > 0)
        (List.mem_assoc "pool/steals_per_task" s.Coop_obs.gauges);
      (* And nothing records once telemetry is off again. *)
      Coop_obs.disable ();
      Coop_obs.reset ();
      let p = Pool.create ~jobs:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown p)
        (fun () ->
          ignore (Pool.parallel_map p (fun i -> i + 1) (List.init 8 Fun.id)));
      let off = Coop_obs.snapshot () in
      Alcotest.(check bool) "no task_us when disabled" false
        (List.mem_assoc "pool/task_us" off.Coop_obs.hists);
      Alcotest.(check int) "no counters when disabled" 0
        (List.length off.Coop_obs.counters))

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_hist_bucket_boundaries;
    Alcotest.test_case "histogram observe and digest" `Quick
      test_hist_observe_and_merge;
    Alcotest.test_case "span nesting and ordering" `Quick
      test_span_nesting_and_order;
    Alcotest.test_case "span closes on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "counter merge at pool sizes 1/2/4" `Quick
      test_counter_merge_across_pool_sizes;
    Alcotest.test_case "disabled mode is a true no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "reset drops everything" `Quick
      test_reset_drops_everything;
    Alcotest.test_case "attribution shares sum to one" `Quick
      test_attribution_shares_sum_to_one;
    Alcotest.test_case "chrome trace structure" `Quick
      test_chrome_trace_structure;
    Alcotest.test_case "snapshot json schema" `Quick test_to_json_schema;
    Alcotest.test_case "derived steals-per-task gauge" `Quick
      test_steals_per_task_gauge;
    Alcotest.test_case "sample series and counter lanes" `Quick
      test_sample_series;
    Alcotest.test_case "pool steal telemetry end to end" `Quick
      test_pool_steal_telemetry;
  ]
